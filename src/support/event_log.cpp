#include "support/event_log.hpp"

#include <algorithm>
#include <iomanip>

#include "support/json.hpp"

namespace bsk::support {

namespace {

// Per-thread shard assignment: round-robin at first use. Keeps every
// recording thread on its own stripe without hashing std::thread::id.
std::atomic<std::size_t> g_next_shard{0};

std::size_t my_shard() noexcept {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) %
      EventLog::kShards;
  return idx;
}

}  // namespace

void EventLog::record(std::string source, std::string name, double value,
                      std::string detail) {
  Event e{Clock::now(), std::move(source), std::move(name),
          value,        std::move(detail), mono_now(),
          seq_.fetch_add(1, std::memory_order_relaxed)};
  Shard& s = shards_[my_shard()];
  MutexLock lk(s.mu);
  s.events.push_back(std::move(e));
}

std::vector<Event> EventLog::merged_snapshot() const {
  // Hold every shard lock for the copy so no in-flight record with a lower
  // seq than an already-copied event can land in a not-yet-copied shard.
  for (const Shard& s : shards_) s.mu.lock();
  std::vector<Event> out;
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.events.size();
  out.reserve(n);
  for (const Shard& s : shards_)
    out.insert(out.end(), s.events.begin(), s.events.end());
  for (const Shard& s : shards_) s.mu.unlock();
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

std::vector<Event> EventLog::snapshot() const { return merged_snapshot(); }

std::vector<Event> EventLog::by_source(const std::string& source) const {
  std::vector<Event> all = merged_snapshot();
  std::vector<Event> out;
  std::copy_if(all.begin(), all.end(), std::back_inserter(out),
               [&](const Event& e) { return e.source == source; });
  return out;
}

std::vector<Event> EventLog::by_name(const std::string& name) const {
  std::vector<Event> all = merged_snapshot();
  std::vector<Event> out;
  std::copy_if(all.begin(), all.end(), std::back_inserter(out),
               [&](const Event& e) { return e.name == name; });
  return out;
}

std::size_t EventLog::count(const std::string& source,
                            const std::string& name) const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    MutexLock lk(s.mu);
    n += static_cast<std::size_t>(
        std::count_if(s.events.begin(), s.events.end(), [&](const Event& e) {
          return e.source == source && e.name == name;
        }));
  }
  return n;
}

SimTime EventLog::first_time(const std::string& source,
                             const std::string& name) const {
  const std::vector<Event> all = merged_snapshot();
  for (const Event& e : all)
    if (e.source == source && e.name == name) return e.time;
  return -1.0;
}

SimTime EventLog::last_time(const std::string& source,
                            const std::string& name) const {
  const std::vector<Event> all = merged_snapshot();
  for (auto it = all.rbegin(); it != all.rend(); ++it)
    if (it->source == source && it->name == name) return it->time;
  return -1.0;
}

bool EventLog::happens_before(const std::string& src_a, const std::string& a,
                              const std::string& src_b,
                              const std::string& b) const {
  // Compare on the append order (seq), not SimTime: concurrent shards can
  // stamp equal times while the ordering claim is about causal sequence.
  const std::vector<Event> all = merged_snapshot();
  std::uint64_t first_a = 0;
  bool have_a = false;
  for (const Event& e : all) {
    if (e.source == src_a && e.name == a) {
      first_a = e.seq;
      have_a = true;
      break;
    }
  }
  if (!have_a) return false;
  for (auto it = all.rbegin(); it != all.rend(); ++it)
    if (it->source == src_b && it->name == b) return first_a < it->seq;
  return false;
}

void EventLog::clear() {
  for (Shard& s : shards_) s.mu.lock();
  for (Shard& s : shards_) s.events.clear();
  for (Shard& s : shards_) s.mu.unlock();
}

std::size_t EventLog::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    MutexLock lk(s.mu);
    n += s.events.size();
  }
  return n;
}

void EventLog::dump(std::ostream& os) const {
  const std::vector<Event> all = merged_snapshot();
  const auto flags = os.flags();
  const auto prec = os.precision();
  const auto fill = os.fill();
  for (const Event& e : all) {
    os << std::fixed << std::setprecision(2) << std::setw(9) << e.time << "  "
       << std::left << std::setw(12) << e.source << std::setw(16) << e.name
       << std::right << std::setprecision(3) << e.value;
    if (!e.detail.empty()) os << "  # " << e.detail;
    os << '\n';
  }
  os.flags(flags);
  os.precision(prec);
  os.fill(fill);
}

void EventLog::dump_jsonl(std::ostream& os) const {
  // Build each row with locale/stream-state-independent token formatting:
  // nothing here touches the stream's flags, and non-finite values become
  // null instead of the JSON-invalid "nan"/"inf" tokens operator<< prints.
  const std::vector<Event> all = merged_snapshot();
  std::string row;
  for (const Event& e : all) {
    row.clear();
    row += "{\"t\":";
    row += json::number_token(e.time);
    row += ",\"tw\":";
    row += json::number_token(e.wall);
    row += ",\"seq\":";
    row += std::to_string(e.seq);
    row += ",\"source\":\"";
    row += json::escape(e.source);
    row += "\",\"event\":\"";
    row += json::escape(e.name);
    row += "\",\"value\":";
    row += json::number_token(e.value);
    if (!e.detail.empty()) {
      row += ",\"detail\":\"";
      row += json::escape(e.detail);
      row += '"';
    }
    row += "}\n";
    os.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
}

EventLog& global_event_log() {
  static EventLog log;
  return log;
}

}  // namespace bsk::support
