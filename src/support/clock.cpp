#include "support/clock.hpp"

#include <thread>

namespace bsk::support {

std::atomic<double> Clock::scale_{1.0};
const std::chrono::steady_clock::time_point Clock::epoch_ =
    std::chrono::steady_clock::now();

void Clock::set_scale(double s) noexcept {
  if (s > 0.0) scale_.store(s, std::memory_order_relaxed);
}

double Clock::scale() noexcept { return scale_.load(std::memory_order_relaxed); }

SimTime Clock::now() noexcept {
  const auto wall = std::chrono::steady_clock::now() - epoch_;
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall).count();
  return wall_s * scale();
}

std::chrono::nanoseconds Clock::to_wall(SimDuration d) noexcept {
  const double wall_s = d.count() / scale();
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(wall_s * 1e9));
}

void Clock::sleep_for(SimDuration d) {
  if (d.count() <= 0.0) return;
  std::this_thread::sleep_for(to_wall(d));
}

void Clock::sleep_until(SimTime t) {
  const SimTime n = now();
  if (t > n) sleep_for(SimDuration(t - n));
}

double mono_now() noexcept {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace bsk::support
