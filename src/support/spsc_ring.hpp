#pragma once
// Single-producer / single-consumer lock-free bounded ring buffer.
//
// The FastFlow-style fast path for point-to-point links where both endpoints
// are known to be single threads (e.g. adjacent pipeline stages). Indices are
// monotonically increasing counters; the slot array is a power-of-two so
// masking replaces modulo. Producer and consumer cursors live on separate
// cache lines to avoid false sharing (Core Guidelines CP.100 notes apply:
// this is the one deliberately lock-free structure in the codebase, kept
// minimal and memory-order-annotated).

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace bsk::support {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

/// Wait-free SPSC FIFO of fixed capacity (rounded up to a power of two).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool push(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;  // full
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;  // empty
    std::optional<T> out{std::move(slots_[tail & mask_])};
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  /// Approximate occupancy; exact when called from either endpoint thread.
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }
  bool empty() const { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace bsk::support
