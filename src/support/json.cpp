#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace bsk::support::json {

namespace {

constexpr char kHex[] = "0123456789abcdef";

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

void write_string(std::ostream& os, std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

std::string number_token(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void write_number(std::ostream& os, double v) {
  const std::string t = number_token(v);
  os.write(t.data(), static_cast<std::streamsize>(t.size()));
}

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = get(key);
  return v && v->is_number() ? v->number : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string_view fallback) const {
  const Value* v = get(key);
  return v && v->is_string() ? v->string : std::string(fallback);
}

namespace {

// Strict RFC 8259 recursive-descent parser. No extensions: no comments, no
// trailing commas, no bare NaN/Infinity, no single quotes, no control
// characters inside strings.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* err) {
    Value v;
    if (!parse_value(v, 0)) {
      if (err) *err = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing data after JSON value");
      if (err) *err = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null");
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = Value::Kind::String;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        out.kind = Value::Kind::Number;
        return parse_number(out.number);
    }
  }

  bool parse_array(Value& out, int depth) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value elem;
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value& out, int depth) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key string");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      Value val;
      if (!parse_value(val, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool hex4(std::uint32_t& cp) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    for (;;) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("lone high surrogate");
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      return fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return fail("invalid number fraction");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return fail("invalid number exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), out);
    if (res.ec != std::errc{} || res.ptr != tok.data() + tok.size())
      return fail("number out of range");
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* err) {
  return Parser(text).run(err);
}

}  // namespace bsk::support::json
