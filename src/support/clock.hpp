#pragma once
// Virtual (scaled) clock.
//
// Everything time-dependent in bsk — task service times, manager control-loop
// periods, rate estimation windows — is expressed in *simulated seconds* and
// goes through this clock. A global scale factor maps simulated seconds to
// wall-clock seconds, so the minutes-long traces of the paper's Fig. 3/4
// replay in a few wall seconds while preserving every ratio the managers
// observe. Scale 1.0 gives real time.

#include <atomic>
#include <chrono>

namespace bsk::support {

/// Simulated time duration, in seconds (fractional).
using SimDuration = std::chrono::duration<double>;

/// A point in simulated time, seconds since clock epoch (process start).
using SimTime = double;

/// Process-wide virtual clock. All members are thread-safe.
class Clock {
 public:
  /// Set how many simulated seconds elapse per wall-clock second.
  /// E.g. scale 30 replays a 5-minute trace in 10 wall seconds.
  static void set_scale(double sim_seconds_per_wall_second) noexcept;

  /// Current scale factor.
  static double scale() noexcept;

  /// Current simulated time (seconds since process start).
  static SimTime now() noexcept;

  /// Block the calling thread for `d` of *simulated* time.
  static void sleep_for(SimDuration d);

  /// Block until simulated time `t` (no-op if already past).
  static void sleep_until(SimTime t);

  /// Convert a simulated duration to the wall-clock duration it occupies
  /// under the current scale.
  static std::chrono::nanoseconds to_wall(SimDuration d) noexcept;

 private:
  static std::atomic<double> scale_;
  static const std::chrono::steady_clock::time_point epoch_;
};

/// Monotonic wall-clock seconds. On Linux std::chrono::steady_clock reads
/// CLOCK_MONOTONIC, whose epoch (boot) is shared by every process on the
/// host — so these stamps are directly comparable across a local process and
/// the bskd daemons it spawns, which is what the cross-process trace merge
/// sorts on. Unlike SimTime this is unscaled and not relative to process
/// start.
double mono_now() noexcept;

/// RAII guard that sets the clock scale and restores the previous value.
/// Handy in tests that want a fast clock without leaking state.
class ScopedClockScale {
 public:
  explicit ScopedClockScale(double s) : prev_(Clock::scale()) {
    Clock::set_scale(s);
  }
  ~ScopedClockScale() { Clock::set_scale(prev_); }
  ScopedClockScale(const ScopedClockScale&) = delete;
  ScopedClockScale& operator=(const ScopedClockScale&) = delete;

 private:
  double prev_;
};

}  // namespace bsk::support
