#pragma once
// resume_core: the pure decision logic of the epoch-fenced session resume.
//
// The reliability protocol between RemoteWorkerNode (client) and bskd's
// Session (server) — sequence-numbered tasks, at-most-once execution via a
// cached-result dedup window, epoch-fenced reconnects that replay the
// unacked tail — was spread across remote_conduit.cpp and bskd_main.cpp,
// interleaved with sockets, locks and epoll bookkeeping. This header
// extracts the decisions into pure value types, so the code the daemon and
// the client actually run is the code `bsk-verify` (analysis/mc) explores
// exhaustively across every delivery interleaving:
//
//   SessionCore      — server: epoch fence, execute-or-resend-cached
//   ResumeFence      — client: what a resume Hello presents, what an ack
//                      commits
//   classify_result  — client: where an incoming ResultMsg lands against
//                      the pending (unacked) deque
//
// No I/O, no clocks, no locks: callers serialize access (bskd under the
// session mutex, RemoteWorkerNode under mu_, the model checker on copied
// states).

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "net/wire.hpp"
#include "rt/task.hpp"

namespace bsk::net {

/// Server-side protocol state of one hosted worker session: the attach
/// epoch fence plus the duplicate-suppression result cache. bskd's Session
/// owns one (under the session mutex); the model checker owns copies.
class SessionCore {
 public:
  explicit SessionCore(std::size_t result_cache_cap = 256)
      : cap_(result_cache_cap) {}

  std::uint32_t epoch() const { return epoch_; }
  std::uint64_t dups_suppressed() const { return dups_; }
  std::size_t cached_results() const { return results_.size(); }

  /// The cached sequence numbers, ascending — the model checker's state
  /// fingerprint needs the exact dedup-window contents, not just a count.
  std::vector<std::uint64_t> cached_seqs() const {
    std::vector<std::uint64_t> out;
    out.reserve(results_.size());
    for (const auto& [seq, f] : results_) out.push_back(seq);
    return out;
  }

  /// A fresh (non-resume) attach bumps the epoch like any other: a later
  /// zombie resume presenting the pre-attach epoch must hit the fence.
  std::uint32_t fresh_attach() { return ++epoch_; }

  /// Epoch-fenced resume. Only a client presenting the *current* epoch may
  /// take the session over — anything older is a zombie from before an
  /// earlier re-attach. On success the epoch bumps (fencing the previous
  /// holder) and every result the client has acknowledged is dropped for
  /// good; the new epoch is stored in `my_epoch`.
  bool try_resume(std::uint32_t presented_epoch, std::uint64_t last_acked_seq,
                  std::uint32_t& my_epoch) {
    if (epoch_ != presented_epoch) return false;
    my_epoch = ++epoch_;
    while (!order_.empty() && order_.front() <= last_acked_seq) {
      results_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  /// Should `seq` be executed? Returns the cached reply when this sequence
  /// number already ran (a retransmit or wire duplicate — resend, never
  /// re-execute), nullptr when the caller must execute and then cache().
  /// seq 0 is the unsequenced fast path: always execute, never cached.
  const Frame* admit(std::uint64_t seq) {
    if (seq == 0) return nullptr;
    const auto it = results_.find(seq);
    if (it == results_.end()) return nullptr;
    ++dups_;
    return &it->second;
  }

  /// Record the reply for `seq`, evicting the oldest past the cap. The cap
  /// is far larger than any client credit window, so a still-wanted result
  /// is never evicted.
  void cache(std::uint64_t seq, Frame reply) {
    if (seq == 0) return;
    results_.emplace(seq, std::move(reply));
    order_.push_back(seq);
    while (order_.size() > cap_) {
      results_.erase(order_.front());
      order_.pop_front();
    }
  }

 private:
  std::size_t cap_;
  std::uint32_t epoch_ = 0;
  std::map<std::uint64_t, Frame> results_;  // seq → cached reply
  std::deque<std::uint64_t> order_;         // eviction FIFO
  std::uint64_t dups_ = 0;
};

/// Client-side fence state: the (session, epoch) identity a resume Hello
/// presents and a successful HelloAck commits.
struct ResumeFence {
  std::uint64_t session = 0;
  std::uint32_t epoch = 0;

  void stamp(Hello& h, std::uint64_t last_acked_seq) const {
    h.resume_session = session;
    h.resume_epoch = epoch;
    h.last_acked_seq = last_acked_seq;
  }
  void commit(const HelloAck& ack) {
    session = ack.session;
    epoch = ack.epoch;
  }
};

/// One sent-but-unanswered task (the client's crash-recovery copy).
struct PendingTask {
  std::uint64_t seq = 0;
  rt::Task task;
  double last_sent = 0.0;
};

/// Where an incoming ResultMsg lands against the pending deque.
enum class ResultClass {
  DeliverFront,     ///< the oldest task's result: pop and deliver
  BufferAhead,      ///< a later pending task's result: buffer until oldest
  DuplicateBehind,  ///< already delivered once (seq < oldest): suppress
  Poison,           ///< parseable but the task id mismatches: corrupt, drop
  Orphan,           ///< ahead of the oldest but matches nothing: drop
};

/// Classify result `seq`/`r` against the oldest-first unacked deque.
/// Corruption can garble a parseable frame; a result whose task id does
/// not match the task we sent is poison, not an ack (WorkerDone markers
/// carry no id and are exempt). Precondition: `unacked` is non-empty.
inline ResultClass classify_result(const std::deque<PendingTask>& unacked,
                                   std::uint64_t seq, const rt::Task& r) {
  const PendingTask& front = unacked.front();
  if (seq == front.seq) {
    if (r.kind != rt::TaskKind::WorkerDone && r.id != front.task.id)
      return ResultClass::Poison;
    return ResultClass::DeliverFront;
  }
  if (seq < front.seq) return ResultClass::DuplicateBehind;
  for (const PendingTask& p : unacked) {
    if (p.seq != seq) continue;
    if (r.kind != rt::TaskKind::WorkerDone && r.id != p.task.id)
      return ResultClass::Poison;
    return ResultClass::BufferAhead;
  }
  return ResultClass::Orphan;
}

}  // namespace bsk::net
