#include "net/worker_pool.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "net/shm.hpp"
#include "support/clock.hpp"

namespace bsk::net {

namespace {

std::string endpoint_key(const Endpoint& ep) {
  return ep.host + ":" + std::to_string(ep.port);
}

// Only loopback endpoints can share memory with the daemon.
bool is_local(const Endpoint& ep) {
  return ep.host == "127.0.0.1" || ep.host == "localhost" ||
         ep.host == "::1";
}

}  // namespace

WorkerPool::WorkerPool(std::vector<Endpoint> endpoints, WorkerPoolOptions opts)
    : opts_(std::move(opts)), endpoints_(std::move(endpoints)) {
  if (!opts_.local_fallback)
    opts_.local_fallback = [] { return std::make_unique<rt::SimComputeNode>(); };
  if (opts_.chaos)
    plan_ = std::make_shared<FaultPlan>(opts_.chaos_seed, *opts_.chaos);
}

WorkerPool::~WorkerPool() { stop_watch(); }

Hello WorkerPool::hello_template() const {
  Hello hello;
  hello.role = 0;
  hello.node_kind = opts_.node_kind;
  hello.clock_scale = support::Clock::scale();
  hello.heartbeat_wall_s = opts_.heartbeat_wall_s;
  return hello;
}

std::shared_ptr<Transport> WorkerPool::wrap(std::shared_ptr<Transport> tp,
                                            const std::string& stream) {
  if (!plan_) return tp;
  auto inj = std::make_shared<FaultInjector>(std::move(tp), plan_, stream);
  {
    support::MutexLock lk(mu_);
    injectors_.push_back(inj);
  }
  return inj;
}

bool WorkerPool::quarantined(const Endpoint& ep) const {
  support::MutexLock lk(mu_);
  auto it = quarantine_.find(endpoint_key(ep));
  return it != quarantine_.end() && it->second.until > wall_now();
}

void WorkerPool::decay_quarantine(double now) {
  for (auto it = quarantine_.begin(); it != quarantine_.end();) {
    Quarantine& q = it->second;
    if (q.until >= 0.0 && q.until <= now) {
      // Penalty served: clean slate. Forgetting the failure history too is
      // the point — a re-admitted flapper must fail `threshold` more times
      // before it is quarantined again, not once.
      it = quarantine_.erase(it);
      continue;
    }
    if (q.until < 0.0) {
      while (!q.failures.empty() &&
             now - q.failures.front() > opts_.quarantine_window_wall_s)
        q.failures.pop_front();
      if (q.failures.empty()) {
        it = quarantine_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

void WorkerPool::note_endpoint_failure(const Endpoint& ep) {
  endpoint_failures_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.quarantine_threshold == 0) return;
  const double now = wall_now();
  support::MutexLock lk(mu_);
  decay_quarantine(now);
  Quarantine& q = quarantine_[endpoint_key(ep)];
  q.failures.push_back(now);
  while (!q.failures.empty() &&
         now - q.failures.front() > opts_.quarantine_window_wall_s)
    q.failures.pop_front();
  if (q.failures.size() >= opts_.quarantine_threshold)
    q.until = now + opts_.quarantine_wall_s;
}

std::size_t WorkerPool::quarantined_count() const {
  const double now = wall_now();
  support::MutexLock lk(mu_);
  std::size_t n = 0;
  for (const auto& [key, q] : quarantine_)
    if (q.until > now) ++n;
  return n;
}

ChaosStats WorkerPool::chaos_stats() const {
  ChaosStats sum;
  support::MutexLock lk(mu_);
  for (const auto& inj : injectors_) {
    const ChaosStats s = inj->chaos_stats();
    sum.frames_seen += s.frames_seen;
    sum.dropped += s.dropped;
    sum.duplicated += s.duplicated;
    sum.reordered += s.reordered;
    sum.corrupted += s.corrupted;
    sum.delayed += s.delayed;
    sum.blocked_outbound += s.blocked_outbound;
    sum.stalled_inbound += s.stalled_inbound;
    sum.kills += s.kills;
  }
  return sum;
}

std::vector<Endpoint> WorkerPool::current_endpoints() const {
  support::MutexLock lk(mu_);
  return endpoints_;
}

std::optional<WorkerPool::Connected> WorkerPool::connect_one() {
  if (opts_.endpoint_source) {
    // Live recruitment: the fleet as of now, not as of construction.
    std::vector<Endpoint> fresh = opts_.endpoint_source();
    support::MutexLock lk(mu_);
    endpoints_ = std::move(fresh);
  }
  std::vector<Endpoint> eps;
  {
    support::MutexLock lk(mu_);
    decay_quarantine(wall_now());
    eps = endpoints_;
  }
  const std::size_t n = eps.size();
  for (std::size_t i = 0; i < n; ++i) {
    Endpoint ep;
    std::string stream;
    {
      support::MutexLock lk(mu_);
      ep = eps[rr_ % n];
      rr_ = (rr_ + 1) % n;
      stream = "w" + std::to_string(conn_count_);
    }
    if (quarantined(ep)) continue;  // flapping endpoint: stop re-recruiting
    auto raw = TcpTransport::connect(ep.host, ep.port, opts_.tcp);
    if (!raw) continue;
    {
      support::MutexLock lk(mu_);
      ++conn_count_;
    }

    // Wrap before the handshake: once chaos is on, *every* frame of the
    // session — Hello included — crosses the injector.
    std::shared_ptr<Transport> tp = wrap(std::move(raw), stream);
    Hello h = hello_template();
    if (opts_.allow_shm && is_local(ep)) {
      h.want_shm = 1;
      h.shm_ring_bytes = static_cast<std::uint32_t>(opts_.shm_ring_bytes);
    }
    HelloAck ack;
    if (client_handshake(*tp, h, opts_.handshake_timeout_wall_s, &ack)) {
      tp = maybe_attach_shm(std::move(tp), ack, stream);
      return Connected{std::move(tp), ack, ep, stream};
    }
    tp->close();
  }
  return std::nullopt;
}

std::shared_ptr<Transport> WorkerPool::maybe_attach_shm(
    std::shared_ptr<Transport> tp, const HelloAck& ack,
    const std::string& stream) {
  if (ack.shm_name.empty()) return tp;
  ShmOptions so;
  if (ack.shm_ring_bytes != 0) so.ring_bytes = ack.shm_ring_bytes;
  // The session transport — chaos-wrapped or raw — is the anchor: its
  // heartbeats keep liveness detection working and control frames sent
  // over TCP still surface through the shm transport's anchor polling.
  auto shm = ShmTransport::attach_named(ack.shm_name, tp, so);
  if (!shm) return tp;  // stay on TCP; the daemon serves both identically
  shm_attached_.fetch_add(1, std::memory_order_relaxed);
  // Distinct chaos stream: the shm path draws its own fault schedule so a
  // plan written against "w0" keeps its meaning on the anchor.
  return wrap(std::move(shm), stream + "s");
}

std::unique_ptr<rt::Node> WorkerPool::make_node() {
  {
    if (auto c = connect_one()) {
      remote_created_.fetch_add(1, std::memory_order_relaxed);
      RemoteNodeOptions nopts = opts_.node;
      nopts.hello = hello_template();
      nopts.session = c->ack.session;
      nopts.epoch = c->ack.epoch;
      nopts.handshake_timeout_wall_s = opts_.handshake_timeout_wall_s;
      const Endpoint ep = c->ep;
      if (opts_.allow_shm && is_local(ep)) {
        // Resume handshakes re-negotiate the fast path too, and the
        // post-handshake upgrade re-attaches the fresh segment before the
        // unacked replay rides it.
        nopts.hello.want_shm = 1;
        nopts.hello.shm_ring_bytes =
            static_cast<std::uint32_t>(opts_.shm_ring_bytes);
        const std::string stream = c->stream;
        nopts.upgrade = [this, stream](std::shared_ptr<Transport> tp,
                                       const HelloAck& ack) {
          return maybe_attach_shm(std::move(tp), ack, stream + "r");
        };
      }
      nopts.on_hard_fail = [this, ep] { note_endpoint_failure(ep); };
      if (nopts.reconnect_grace_wall_s > 0.0) {
        // Resume stays pinned to the endpoint that owns the session. One
        // connect attempt per call — the node paces retries with its own
        // backoff inside the grace window. While the fault plan has an
        // open partition, the "network" is down: dialing must fail.
        const std::string stream = c->stream;
        TcpOptions one_shot = opts_.tcp;
        one_shot.connect_retries = 0;
        nopts.reconnect = [this, ep, stream,
                           one_shot]() -> std::shared_ptr<Transport> {
          if (plan_ && (plan_->partition_elapsed(true) ||
                        plan_->partition_elapsed(false)))
            return nullptr;
          auto raw = TcpTransport::connect(ep.host, ep.port, one_shot);
          if (!raw) return nullptr;
          return wrap(std::move(raw), stream);
        };
      }
      return std::make_unique<RemoteWorkerNode>(std::move(c->tp),
                                                std::move(nopts));
    }
  }
  fallback_created_.fetch_add(1, std::memory_order_relaxed);
  return opts_.local_fallback();
}

rt::NodeFactory WorkerPool::factory() {
  return [this] { return make_node(); };
}

void WorkerPool::start_watch(rt::Farm& farm, double period_wall_s) {
  if (watch_.joinable()) return;
  watch_ = std::jthread([this, &farm, period_wall_s](std::stop_token st) {
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(period_wall_s));
      const std::size_t n = farm.fail_crashed_workers();
      if (n > 0) crashes_.fetch_add(n, std::memory_order_relaxed);
    }
  });
}

void WorkerPool::stop_watch() {
  if (watch_.joinable()) {
    watch_.request_stop();
    watch_.join();
  }
}

// --------------------------------------------------------- bskd processes

BskdProcess spawn_bskd(const std::string& exe_path, double wait_wall_s,
                       const std::vector<std::string>& extra_args) {
  BskdProcess out;

  // Per-run private directory under $TMPDIR (not a predictable /tmp name):
  // parallel CI jobs each get their own, and nobody can pre-create or race
  // the port file.
  const char* tmpdir = std::getenv("TMPDIR");
  std::string dir_tmpl = (tmpdir && *tmpdir) ? tmpdir : "/tmp";
  if (dir_tmpl.back() == '/') dir_tmpl.pop_back();
  dir_tmpl += "/bskd.XXXXXX";
  std::vector<char> dir_buf(dir_tmpl.begin(), dir_tmpl.end());
  dir_buf.push_back('\0');
  if (::mkdtemp(dir_buf.data()) == nullptr) return out;
  const std::string run_dir = dir_buf.data();
  const std::string port_file = run_dir + "/port";

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::rmdir(run_dir.c_str());
    return out;
  }
  if (pid == 0) {
    std::vector<const char*> argv;
    argv.push_back(exe_path.c_str());
    argv.push_back("--port");
    argv.push_back("0");
    argv.push_back("--port-file");
    argv.push_back(port_file.c_str());
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    ::execv(exe_path.c_str(), const_cast<char* const*>(argv.data()));
    ::_exit(127);  // exec failed
  }

  out.pid = pid;
  const double deadline = wall_now() + wait_wall_s;
  while (wall_now() < deadline) {
    {
      std::ifstream in(port_file);
      unsigned port = 0;
      if (in >> port && port != 0 && port <= 65535) {
        out.port = static_cast<std::uint16_t>(port);
        break;
      }
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      out.pid = -1;  // daemon died before binding
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::unlink(port_file.c_str());
  ::rmdir(run_dir.c_str());

  if (!out.valid() && out.pid > 0) {
    ::kill(out.pid, SIGKILL);
    ::waitpid(out.pid, nullptr, 0);
    out.pid = -1;
  }
  return out;
}

void stop_bskd(BskdProcess& p, int sig) {
  if (p.pid <= 0) return;
  ::kill(p.pid, sig);
  ::waitpid(p.pid, nullptr, 0);
  p.pid = -1;
}

std::optional<std::string> pull_bskd_stats(const Endpoint& ep,
                                           StatsRequest::What what,
                                           double timeout_wall_s) {
  auto tp = TcpTransport::connect(ep.host, ep.port);
  if (!tp) return std::nullopt;
  Hello h;
  h.role = 2;  // stats channel: no worker session behind it
  if (!client_handshake(*tp, h, timeout_wall_s)) {
    tp->close();
    return std::nullopt;
  }
  StatsRequest req;
  req.seq = 1;
  req.what = what;
  if (!tp->send(make_stats_req(req))) {
    tp->close();
    return std::nullopt;
  }
  const double deadline = wall_now() + timeout_wall_s;
  Frame f;
  std::optional<std::string> out;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) break;
    if (tp->recv_for(f, left) != RecvStatus::Ok) break;
    const auto rep = parse_stats_rep(f);
    if (!rep || rep->seq != req.seq) continue;
    if (rep->ok) out = rep->text;
    break;
  }
  tp->send(Frame{FrameType::Shutdown, {}});
  tp->close();
  return out;
}

}  // namespace bsk::net
