#include "net/worker_pool.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/clock.hpp"

namespace bsk::net {

WorkerPool::WorkerPool(std::vector<Endpoint> endpoints, WorkerPoolOptions opts)
    : endpoints_(std::move(endpoints)), opts_(std::move(opts)) {
  if (!opts_.local_fallback)
    opts_.local_fallback = [] { return std::make_unique<rt::SimComputeNode>(); };
}

WorkerPool::~WorkerPool() { stop_watch(); }

std::shared_ptr<Transport> WorkerPool::connect_one() {
  const std::size_t n = endpoints_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Endpoint ep;
    {
      std::scoped_lock lk(mu_);
      ep = endpoints_[rr_ % n];
      rr_ = (rr_ + 1) % n;
    }
    auto tp = TcpTransport::connect(ep.host, ep.port, opts_.tcp);
    if (!tp) continue;

    Hello hello;
    hello.role = 0;
    hello.node_kind = opts_.node_kind;
    hello.clock_scale = support::Clock::scale();
    hello.heartbeat_wall_s = opts_.heartbeat_wall_s;
    std::shared_ptr<Transport> shared{std::move(tp)};
    if (client_handshake(*shared, hello, opts_.handshake_timeout_wall_s))
      return shared;
    shared->close();
  }
  return nullptr;
}

std::unique_ptr<rt::Node> WorkerPool::make_node() {
  if (!endpoints_.empty()) {
    if (auto tp = connect_one()) {
      remote_created_.fetch_add(1, std::memory_order_relaxed);
      return std::make_unique<RemoteWorkerNode>(std::move(tp), opts_.node);
    }
  }
  fallback_created_.fetch_add(1, std::memory_order_relaxed);
  return opts_.local_fallback();
}

rt::NodeFactory WorkerPool::factory() {
  return [this] { return make_node(); };
}

void WorkerPool::start_watch(rt::Farm& farm, double period_wall_s) {
  if (watch_.joinable()) return;
  watch_ = std::jthread([this, &farm, period_wall_s](std::stop_token st) {
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(period_wall_s));
      const std::size_t n = farm.fail_crashed_workers();
      if (n > 0) crashes_.fetch_add(n, std::memory_order_relaxed);
    }
  });
}

void WorkerPool::stop_watch() {
  if (watch_.joinable()) {
    watch_.request_stop();
    watch_.join();
  }
}

// --------------------------------------------------------- bskd processes

BskdProcess spawn_bskd(const std::string& exe_path, double wait_wall_s) {
  BskdProcess out;

  char tmpl[] = "/tmp/bskd_port_XXXXXX";
  const int tmp_fd = ::mkstemp(tmpl);
  if (tmp_fd < 0) return out;
  ::close(tmp_fd);
  const std::string port_file = tmpl;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::unlink(port_file.c_str());
    return out;
  }
  if (pid == 0) {
    ::execl(exe_path.c_str(), exe_path.c_str(), "--port", "0", "--port-file",
            port_file.c_str(), static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }

  out.pid = pid;
  const double deadline = wall_now() + wait_wall_s;
  while (wall_now() < deadline) {
    {
      std::ifstream in(port_file);
      unsigned port = 0;
      if (in >> port && port != 0 && port <= 65535) {
        out.port = static_cast<std::uint16_t>(port);
        break;
      }
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      out.pid = -1;  // daemon died before binding
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::unlink(port_file.c_str());

  if (!out.valid() && out.pid > 0) {
    ::kill(out.pid, SIGKILL);
    ::waitpid(out.pid, nullptr, 0);
    out.pid = -1;
  }
  return out;
}

void stop_bskd(BskdProcess& p, int sig) {
  if (p.pid <= 0) return;
  ::kill(p.pid, sig);
  ::waitpid(p.pid, nullptr, 0);
  p.pid = -1;
}

}  // namespace bsk::net
