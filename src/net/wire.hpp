#pragma once
// bsk::net wire layer: length-prefixed binary framing and serializers.
//
// Everything that crosses a process boundary — stream tasks, sensor
// snapshots, actuator commands, heartbeats, the connection handshake — is
// carried in a Frame: on the wire `[u32 length][u32 crc][u8 type][payload]`
// with the length counting the type byte plus the payload (not the crc),
// all little-endian. The crc is CRC-32 over type byte + payload, so a
// flipped bit anywhere in a frame is caught at re-framing time instead of
// surfacing as garbage task state. The Writer/Reader pair is a plain
// byte-buffer serializer (no reflection, no allocation tricks);
// FrameDecoder incrementally re-frames an arbitrary byte stream, which is
// what the TCP transport feeds it — on corruption it stops with a typed
// DecodeError (the stream past a bad frame is unrecoverable: lengths can no
// longer be trusted), and the transport reports the connection dead.
//
// Protocol version 2 (v1 had no frame checksum). A peer speaking a
// different version is refused at handshake time (HelloAck carries the
// server's version).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "am/abc.hpp"
#include "rt/task.hpp"

namespace bsk::net {

inline constexpr std::uint32_t kMagic = 0x424b5344;  // "BKSD"
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kDefaultMaxFrame = 16u << 20;  // 16 MiB

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `n` bytes.
std::uint32_t crc32(const std::uint8_t* p, std::size_t n,
                    std::uint32_t seed = 0);

/// Frame discriminator — the first payload byte after the length prefix.
enum class FrameType : std::uint8_t {
  Hello = 1,    ///< client → server: open a session (role, node kind, clock)
  HelloAck,     ///< server → client: session accepted
  TaskMsg,      ///< parent → worker: one stream task to execute
  ResultMsg,    ///< worker → parent: the processed task (WorkerDone = filtered)
  Heartbeat,    ///< liveness beacon, absorbed at transport level
  SecureReq,    ///< upgrade this channel (the wire face of Link::secure())
  SecureAck,    ///< channel upgrade confirmed
  SensorReq,    ///< manager → remote ABC: take a monitoring snapshot
  SensorRep,    ///< remote ABC → manager: the Sensors snapshot
  ActReq,       ///< manager → remote ABC: actuator command
  ActRep,       ///< remote ABC → manager: actuator outcome
  Shutdown,     ///< orderly close of the logical channel
  StatsReq,     ///< observer → daemon: pull metrics/trace (bsk::obs)
  StatsRep,     ///< daemon → observer: the requested snapshot text
  ClusterHello,    ///< gossiper → peer: sender's member record + view
  ClusterWelcome,  ///< peer → gossiper: the merged membership view
  Leave,           ///< departing node → peers: deregister me immediately
  MembershipReq,   ///< observer → daemon (role 2): pull the live view
  MembershipRep,   ///< daemon → observer: the serialized MembershipView
};

/// One decoded frame: type + opaque payload bytes.
struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::vector<std::uint8_t> payload;
};

namespace wire {

/// Append-only little-endian byte writer. Two modes: owning (default
/// constructor; take() hands the buffer out) and external — bound to a
/// caller-provided buffer so serializers append straight into a transport
/// send slab with no intermediate copy (the zero-copy send path).
class Writer {
 public:
  Writer() : buf_(&owned_) {}
  explicit Writer(std::vector<std::uint8_t>& external) : buf_(&external) {}
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& s);                   // u32 length + bytes
  void bytes(const std::uint8_t* p, std::size_t n);  // raw append

  /// Owning mode only: external-mode writers do not own their bytes.
  std::vector<std::uint8_t> take() { return std::move(owned_); }
  const std::vector<std::uint8_t>& data() const { return *buf_; }

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* buf_;
};

/// Bounds-checked little-endian byte reader. After any underflow ok() is
/// false and every further get returns a zero value — callers check ok()
/// once at the end of a decode.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}
  explicit Reader(const std::vector<std::uint8_t>& v)
      : Reader(v.data(), v.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace wire

// --------------------------------------------------------------- framing

/// Encode a frame to its on-the-wire bytes (length prefix included).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Append a frame's on-the-wire bytes to `out` without an intermediate
/// buffer — the coalescing send path encodes a whole batch of frames into
/// one buffer this way.
void encode_frame_into(const Frame& f, std::vector<std::uint8_t>& out);

/// Serialize one frame straight into `out` with no intermediate Frame or
/// payload vector: reserves the 8-byte `[len][crc]` header, writes the type
/// byte, lets `emit` append the payload through a Writer bound to `out`,
/// then patches length and CRC in place. Returns the bytes appended. This
/// is the zero-copy send primitive — transports expose it per-frame via
/// Transport::send_serialized, building frames directly in send slabs.
template <typename EmitFn>
std::size_t build_frame_into(std::vector<std::uint8_t>& out, FrameType type,
                             EmitFn&& emit) {
  const std::size_t start = out.size();
  out.resize(start + 8);  // length + crc placeholders, patched below
  out.push_back(static_cast<std::uint8_t>(type));
  {
    wire::Writer w(out);
    emit(w);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - start - 8);
  const std::uint32_t crc = crc32(out.data() + start + 8, len);
  for (int i = 0; i < 4; ++i) {
    out[start + i] = static_cast<std::uint8_t>(len >> (8 * i));
    out[start + 4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return out.size() - start;
}

/// Why a byte stream stopped decoding. A non-None error is terminal: once
/// framing is untrustworthy the connection must die (gracefully — the
/// transport surfaces Closed, never undefined behavior).
enum class DecodeError : std::uint8_t {
  None = 0,
  ZeroLength,  ///< length prefix of 0: not a legal frame
  Oversize,    ///< length prefix exceeds max_frame (corrupt or hostile)
  BadCrc,      ///< checksum mismatch: payload bytes were damaged in flight
};

/// Human-readable DecodeError name (logs and test failure messages).
const char* decode_error_name(DecodeError e);

/// Incremental frame parser over an arbitrary byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Append raw bytes received from the wire.
  void feed(const std::uint8_t* p, std::size_t n);

  /// Extract the next complete frame, if any. Sets error() on a corrupt
  /// stream (bad length prefix or checksum mismatch).
  std::optional<Frame> next();

  DecodeError error() const { return error_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
  DecodeError error_ = DecodeError::None;
};

// --------------------------------------------------------------- messages

/// Connection handshake (client side). heartbeat_wall_s and all transport
/// liveness timing are *wall* seconds — liveness is a property of the real
/// machine, not of simulated time. clock_scale propagates the parent's
/// virtual-clock scale so simulated service times agree across processes.
struct Hello {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  /// 0 = worker channel, 1 = ABC control, 2 = stats, 3 = cluster gossip.
  std::uint8_t role = 0;
  std::string node_kind;  ///< worker node to instantiate ("sim", "echo", ...)
  double clock_scale = 1.0;
  double heartbeat_wall_s = 0.25;
  /// Session resume (reconnect after a transient partition). 0 = fresh
  /// session; otherwise the session id from the previous HelloAck. The
  /// epoch fences stale reconnect attempts, and last_acked_seq lets the
  /// server prune its result cache of everything the client already holds.
  std::uint64_t resume_session = 0;
  std::uint32_t resume_epoch = 0;
  std::uint64_t last_acked_seq = 0;
  /// Shared-memory negotiation (trailing fields — absent on frames from
  /// older peers, parsed as defaults). A client that resolved the endpoint
  /// to the local machine asks for the shm fast path; the server answers
  /// with a segment name in the HelloAck and the session's data frames move
  /// onto the rings while this TCP connection stays as the liveness anchor.
  std::uint8_t want_shm = 0;
  std::uint32_t shm_ring_bytes = 0;  ///< requested ring size (0 = server default)
};

struct HelloAck {
  std::uint16_t version = kProtocolVersion;
  std::uint64_t session = 0;
  bool ok = true;
  /// Incremented each time the session is (re)attached; a reconnecting
  /// client presents the epoch it saw so a zombie connection from a prior
  /// attach is fenced off.
  std::uint32_t epoch = 0;
  /// True when resume_session was recognized and worker state survives;
  /// false means the server started a fresh session (client must replay
  /// every unacked task).
  bool resumed = false;
  /// Shared-memory grant (trailing fields): nonempty when the server
  /// created a segment for this session — the client shm_open()s it, maps
  /// the rings, and the segment name is unlinked after attach.
  std::string shm_name;
  std::uint32_t shm_ring_bytes = 0;  ///< granted per-direction ring size
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
  double wall_time = 0.0;
};

/// Remote actuator command (the ABC RPC request).
struct ActRequest {
  enum class Op : std::uint8_t {
    AddWorker = 1,
    RemoveWorker,
    Rebalance,
    SetRate,
    SecureLinks,
  };
  std::uint32_t seq = 0;
  Op op = Op::AddWorker;
  double rate = 0.0;
  /// Two-phase secure-before-commit: the client-side commit gate's
  /// annotation travels with the command so the remote farm instantiates
  /// the worker pre-secured.
  bool require_secure = false;
};

struct ActReply {
  std::uint32_t seq = 0;
  bool ok = false;
  std::uint64_t count = 0;
};

// Frame constructors / parsers. Parsers return nullopt on malformed input.
Frame make_hello(const Hello& h);
std::optional<Hello> parse_hello(const Frame& f);

Frame make_hello_ack(const HelloAck& a);
std::optional<HelloAck> parse_hello_ack(const Frame& f);

Frame make_heartbeat(const HeartbeatMsg& hb);
std::optional<HeartbeatMsg> parse_heartbeat(const Frame& f);

/// Task frames carry a u64 sequence number ahead of the task body. seq 0 is
/// the legacy unsequenced path (RemoteConduit, broadcast); nonzero seqs are
/// what the reliability layer deduplicates on under duplication/replay.
Frame make_task(const rt::Task& t, FrameType type = FrameType::TaskMsg,
                std::uint64_t seq = 0);
std::optional<rt::Task> parse_task(const Frame& f);
std::optional<std::pair<std::uint64_t, rt::Task>> parse_task_seq(
    const Frame& f);

Frame make_sensor_req(std::uint32_t seq);
std::optional<std::uint32_t> parse_sensor_req(const Frame& f);

Frame make_sensor_rep(std::uint32_t seq, const am::Sensors& s);
std::optional<std::pair<std::uint32_t, am::Sensors>> parse_sensor_rep(
    const Frame& f);

Frame make_act_req(const ActRequest& r);
std::optional<ActRequest> parse_act_req(const Frame& f);

Frame make_act_rep(const ActReply& r);
std::optional<ActReply> parse_act_rep(const Frame& f);

/// Observability pull RPC: a stats channel (Hello role 2) asks the daemon
/// for one of its obs snapshots and gets the text back verbatim. `what`
/// selects the snapshot kind.
struct StatsRequest {
  enum class What : std::uint8_t {
    Prometheus = 1,  ///< metrics, Prometheus text exposition 0.0.4
    MetricsJsonl,    ///< metrics, one JSON object per line
    TraceJsonl,      ///< MAPE decision spans + event log, JSONL
  };
  std::uint32_t seq = 0;
  What what = What::Prometheus;
};

struct StatsReply {
  std::uint32_t seq = 0;
  bool ok = false;
  std::string text;  ///< snapshot body (empty when !ok)
};

Frame make_stats_req(const StatsRequest& r);
std::optional<StatsRequest> parse_stats_req(const Frame& f);

Frame make_stats_rep(const StatsReply& r);
std::optional<StatsReply> parse_stats_rep(const Frame& f);

// --------------------------------------------------------------- cluster

/// One bskd fleet member. `born` is an incarnation stamp chosen once by the
/// owning daemon at startup (strictly increasing across restarts of the
/// same host:port): departure tombstones record the incarnation they
/// killed, so a restarted daemon re-joins while stale "it is alive" gossip
/// about the dead incarnation stays dead.
struct Member {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;      ///< the member's bskd listener
  std::uint32_t cores = 1;     ///< node weight: core count
  double core_speed = 1.0;     ///< node weight: relative per-core speed
  std::uint64_t born = 0;      ///< incarnation stamp (owner-assigned)

  double weight() const { return cores * core_speed; }
  std::string key() const { return host + ":" + std::to_string(port); }
};

/// A departed member: the tombstone that stops gossip from resurrecting it.
struct Departed {
  std::string key;           ///< Member::key() of the dead node
  std::uint64_t born = 0;    ///< incarnation that died
};

/// The live fleet at one membership epoch. The epoch is a logical version:
/// every join/leave/eviction bumps it, merges take the max, and any message
/// carrying an epoch older than the local view is stale by definition
/// (the fence hierarchy election relies on).
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<Member> members;      ///< canonical order: sorted by key()
  std::vector<Departed> departed;   ///< tombstones (propagate removals)
};

/// Gossip request: the sender introduces itself and pushes membership news.
///
/// Delta gossip (vs the PR-6 full-table exchange): `view` carries either the
/// sender's whole table (`full` != 0) or only the records whose stamp is at
/// least `since` — the sender's epoch at the last exchange this peer
/// acknowledged. `digest` is an order-independent hash of the sender's
/// *entire* member+tombstone set; the receiver compares it against its own
/// digest after merging, and a mismatch forces the next exchange back to a
/// full table. Deltas are therefore a pure bytes optimization: any
/// divergence the delta cannot express is detected by the digest and
/// repaired by the full-table fallback, so convergence is exactly the
/// full-table protocol's. Trailing fields — absent on frames from older
/// encoders, parsed as a full-view exchange.
struct ClusterHelloMsg {
  Member self;
  MembershipView view;       ///< full table, or the delta described below
  std::uint64_t digest = 0;  ///< digest of the sender's full table
  std::uint8_t full = 1;     ///< nonzero: `view` is the whole table
  std::uint64_t since = 0;   ///< delta base: records stamped >= this epoch
};

/// Gossip reply: the peer's membership news back (same delta semantics).
struct ClusterWelcomeMsg {
  MembershipView view;
  std::uint64_t digest = 0;  ///< digest of the replier's full table
  std::uint8_t full = 1;
};

/// Graceful departure: `self` is leaving at (logically) `epoch`.
struct LeaveMsg {
  Member self;
  std::uint64_t epoch = 0;
};

/// Role-2 membership pull: the live view, served next to StatsReq.
struct MembershipReply {
  std::uint32_t seq = 0;
  bool ok = false;  ///< false when the daemon runs without a cluster node
  MembershipView view;
};

Frame make_cluster_hello(const ClusterHelloMsg& m);
std::optional<ClusterHelloMsg> parse_cluster_hello(const Frame& f);

Frame make_cluster_welcome(const ClusterWelcomeMsg& m);
std::optional<ClusterWelcomeMsg> parse_cluster_welcome(const Frame& f);

Frame make_leave(const LeaveMsg& m);
std::optional<LeaveMsg> parse_leave(const Frame& f);

Frame make_membership_req(std::uint32_t seq);
std::optional<std::uint32_t> parse_membership_req(const Frame& f);

Frame make_membership_rep(const MembershipReply& r);
std::optional<MembershipReply> parse_membership_rep(const Frame& f);

void put_member(wire::Writer& w, const Member& m);
bool get_member(wire::Reader& r, Member& out);
void put_view(wire::Writer& w, const MembershipView& v);
bool get_view(wire::Reader& r, MembershipView& out);

// Task payload serialization (the std::any member): empty payloads, strings,
// doubles, signed/unsigned 64-bit integers, and byte vectors travel; any
// other payload type is dropped (the task itself still crosses).
void put_task(wire::Writer& w, const rt::Task& t);
bool get_task(wire::Reader& r, rt::Task& out);

void put_sensors(wire::Writer& w, const am::Sensors& s);
bool get_sensors(wire::Reader& r, am::Sensors& out);

}  // namespace bsk::net
