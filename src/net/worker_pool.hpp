#pragma once
// WorkerPool: hands rt::Farm a NodeFactory whose nodes live in bskd worker
// processes.
//
// Each node the factory mints opens its own TCP connection to one of the
// pool's endpoints (round-robin), performs the Hello/HelloAck handshake,
// and wraps the session in a RemoteWorkerNode. Endpoint unreachable → try
// the next; every endpoint down → fall back to a local node, so the
// autonomic manager's ADD_EXECUTOR always succeeds and a farm whose whole
// bskd fleet died still finishes its stream on local replacements.
//
// Robustness plumbing added by the chaos layer:
//
//   Resume — when RemoteNodeOptions::reconnect_grace_wall_s > 0 the pool
//     arms each node with a reconnect callback pinned to its endpoint, so a
//     transient partition re-attaches the *same* bskd session (epoch-fenced
//     resume handshake, unacked tasks replayed) instead of recruiting a
//     replacement.
//
//   Quarantine — an endpoint whose nodes hard-fail `quarantine_threshold`
//     times within `quarantine_window_wall_s` is skipped for
//     `quarantine_wall_s`: a flapping daemon stops being re-recruited
//     instead of thrashing the farm with doomed replacements. When every
//     endpoint is quarantined, make_node() reports recruit failure through
//     the local fallback path the manager observes.
//
//   Chaos — when `chaos` is set, every connection (initial and reconnect)
//     is wrapped in a FaultInjector sharing one seeded FaultPlan, so a
//     whole farm's fault schedule is reproducible from a single seed.
//     Reconnect attempts made while the plan has an open partition fail,
//     exactly as they would against a real network hole.
//
// start_watch() runs the failure detector: a wall-clock thread that calls
// Farm::fail_crashed_workers() — the farm recovers queued/in-flight tasks
// and bumps failures(), which FarmAbc::sense() converts into the
// WorkerFailureBean the E9 fault-tolerance rules react to. The pool itself
// never talks to the manager; detection flows through the existing sensor
// path.
//
// spawn_bskd()/stop_bskd() are the process-management helpers tests and the
// two-process example use: fork/exec a bskd on an ephemeral port, learn the
// port through a temp file, kill and reap it afterwards.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.hpp"
#include "net/remote_conduit.hpp"
#include "rt/farm.hpp"
#include "rt/node.hpp"

namespace bsk::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct WorkerPoolOptions {
  std::string node_kind = "sim";       ///< worker node bskd instantiates
  double heartbeat_wall_s = 0.05;      ///< requested peer heartbeat period
  double handshake_timeout_wall_s = 2.0;
  TcpOptions tcp;                      ///< connect timeout / retry budget
  RemoteNodeOptions node;  ///< liveness detector + credit-window + resume
  /// Node built when no endpoint is reachable (default: SimComputeNode).
  rt::NodeFactory local_fallback;

  /// Quarantine: hard failures per endpoint within the window before the
  /// pool stops re-recruiting it; 0 disables quarantine. A quarantine that
  /// has served its penalty decays with a clean slate — the failure history
  /// is forgotten, so a re-admitted endpoint is threshold failures (not
  /// one) away from being quarantined again.
  std::size_t quarantine_threshold = 3;
  double quarantine_window_wall_s = 10.0;
  double quarantine_wall_s = 30.0;

  /// Live recruitment feed: when set, the pool refreshes its endpoint list
  /// from this source before every recruit (a cluster::MembershipClient
  /// plugs in here), so workers come from the live fleet instead of a
  /// frozen argv list. An empty return means the cluster is exhausted:
  /// make_node() falls through to the local fallback the manager observes
  /// as a failed recruit.
  std::function<std::vector<Endpoint>()> endpoint_source;

  /// Fault injection: when set, every connection is wrapped in a
  /// FaultInjector over one shared FaultPlan seeded with chaos_seed.
  std::optional<ChaosSpec> chaos;
  std::uint64_t chaos_seed = 1;

  /// Colocated fast path: when the endpoint is loopback, ask bskd for a
  /// shared-memory ring pair and attach it if granted (ShmTransport). The
  /// TCP connection stays alive underneath as the liveness anchor, so
  /// heartbeats, chaos injection and failure detection are unchanged. A
  /// failed attach silently stays on TCP — the daemon serves both paths
  /// identically.
  bool allow_shm = true;
  std::size_t shm_ring_bytes = 1u << 20;  ///< requested per-direction ring
};

class WorkerPool {
 public:
  explicit WorkerPool(std::vector<Endpoint> endpoints,
                      WorkerPoolOptions opts = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// NodeFactory for rt::Farm / FarmConfig. The pool must outlive the farm.
  rt::NodeFactory factory();

  /// Build one node now: a RemoteWorkerNode on the first reachable
  /// non-quarantined endpoint, else the local fallback.
  std::unique_ptr<rt::Node> make_node();

  /// Start the crash detector against `farm` (idempotent).
  void start_watch(rt::Farm& farm, double period_wall_s = 0.1);
  void stop_watch();

  std::size_t remote_nodes_created() const { return remote_created_.load(); }
  std::size_t fallback_nodes_created() const {
    return fallback_created_.load();
  }
  /// Total workers the watch thread has declared crashed.
  std::size_t crashes_detected() const { return crashes_.load(); }

  /// Endpoints currently refused by the quarantine.
  std::size_t quarantined_count() const;
  /// Hard failures recorded against endpoints (quarantine input).
  std::size_t endpoint_failures() const { return endpoint_failures_.load(); }
  /// Feed the quarantine from an external failure detector (a cluster
  /// eviction, a watchdog): counts exactly like a node hard failure.
  void record_endpoint_failure(const Endpoint& ep) {
    note_endpoint_failure(ep);
  }
  /// The endpoints the pool currently recruits from (refreshed from
  /// endpoint_source when one is set).
  std::vector<Endpoint> current_endpoints() const;

  /// Connections that negotiated + attached the colocated shm fast path.
  std::size_t shm_attached() const { return shm_attached_.load(); }

  /// The shared fault plan (null when chaos is off).
  const std::shared_ptr<FaultPlan>& fault_plan() const { return plan_; }
  /// Aggregate of what every injector did (zeroes when chaos is off).
  ChaosStats chaos_stats() const;

 private:
  struct Connected {
    std::shared_ptr<Transport> tp;
    HelloAck ack;
    Endpoint ep;
    std::string stream;
  };

  std::optional<Connected> connect_one();
  Hello hello_template() const;
  /// Attach the shm segment named in `ack` (if any) over anchor `tp`; on
  /// success returns the (chaos-wrapped) shm transport, on failure or no
  /// grant returns `tp` unchanged.
  std::shared_ptr<Transport> maybe_attach_shm(std::shared_ptr<Transport> tp,
                                              const HelloAck& ack,
                                              const std::string& stream);
  /// Wrap a raw transport in this pool's FaultInjector (no-op sans chaos).
  std::shared_ptr<Transport> wrap(std::shared_ptr<Transport> tp,
                                  const std::string& stream);
  void note_endpoint_failure(const Endpoint& ep);
  bool quarantined(const Endpoint& ep) const;
  /// Drop quarantine entries whose penalty or failure window has lapsed
  /// (the clean-slate decay); call with mu_ held.
  void decay_quarantine(double now) BSK_REQUIRES(mu_);

  WorkerPoolOptions opts_;
  std::shared_ptr<FaultPlan> plan_;

  mutable support::Mutex mu_{"WorkerPool"};  // endpoints_, rr_, conn_count_
  std::vector<Endpoint> endpoints_ BSK_GUARDED_BY(mu_);
  std::size_t rr_ BSK_GUARDED_BY(mu_) = 0;
  std::size_t conn_count_ BSK_GUARDED_BY(mu_) = 0;  // names chaos streams "w0", "w1", ...
  struct Quarantine {
    std::deque<double> failures;  // wall times of recent hard failures
    double until = -1.0;
  };
  std::map<std::string, Quarantine> quarantine_ BSK_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<FaultInjector>> injectors_ BSK_GUARDED_BY(mu_);

  std::atomic<std::size_t> remote_created_{0};
  std::atomic<std::size_t> fallback_created_{0};
  std::atomic<std::size_t> shm_attached_{0};
  std::atomic<std::size_t> crashes_{0};
  std::atomic<std::size_t> endpoint_failures_{0};
  std::jthread watch_;
};

// --------------------------------------------------------- bskd processes

/// A spawned bskd worker daemon.
struct BskdProcess {
  int pid = -1;
  std::uint16_t port = 0;
  bool valid() const { return pid > 0 && port != 0; }
};

/// fork/exec `exe_path` on an ephemeral loopback port and wait (up to
/// `wait_wall_s`) for the daemon to report the bound port. Returns an
/// invalid BskdProcess on failure (the child, if any, is reaped). Extra
/// daemon arguments (e.g. "--session-linger", "1") go in `extra_args`.
BskdProcess spawn_bskd(const std::string& exe_path, double wait_wall_s = 5.0,
                       const std::vector<std::string>& extra_args = {});

/// Send `sig` (e.g. SIGTERM, SIGKILL) and reap the daemon. Safe to call on
/// an invalid/already-stopped handle.
void stop_bskd(BskdProcess& p, int sig);

/// Open a role-2 stats channel to a bskd and pull one obs snapshot (the
/// bsk::obs trace-pull RPC). Returns nullopt when the daemon is unreachable
/// or the RPC fails; the connection is closed either way.
std::optional<std::string> pull_bskd_stats(const Endpoint& ep,
                                           StatsRequest::What what,
                                           double timeout_wall_s = 5.0);

}  // namespace bsk::net
