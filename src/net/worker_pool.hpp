#pragma once
// WorkerPool: hands rt::Farm a NodeFactory whose nodes live in bskd worker
// processes.
//
// Each node the factory mints opens its own TCP connection to one of the
// pool's endpoints (round-robin), performs the Hello/HelloAck handshake,
// and wraps the session in a RemoteWorkerNode. Endpoint unreachable → try
// the next; every endpoint down → fall back to a local node, so the
// autonomic manager's ADD_EXECUTOR always succeeds and a farm whose whole
// bskd fleet died still finishes its stream on local replacements.
//
// start_watch() runs the failure detector: a wall-clock thread that calls
// Farm::fail_crashed_workers() — the farm recovers queued/in-flight tasks
// and bumps failures(), which FarmAbc::sense() converts into the
// WorkerFailureBean the E9 fault-tolerance rules react to. The pool itself
// never talks to the manager; detection flows through the existing sensor
// path.
//
// spawn_bskd()/stop_bskd() are the process-management helpers tests and the
// two-process example use: fork/exec a bskd on an ephemeral port, learn the
// port through a temp file, kill and reap it afterwards.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_conduit.hpp"
#include "rt/farm.hpp"
#include "rt/node.hpp"

namespace bsk::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct WorkerPoolOptions {
  std::string node_kind = "sim";       ///< worker node bskd instantiates
  double heartbeat_wall_s = 0.05;      ///< requested peer heartbeat period
  double handshake_timeout_wall_s = 2.0;
  TcpOptions tcp;                      ///< connect timeout / retry budget
  RemoteNodeOptions node;  ///< liveness detector + credit-window tuning
  /// Node built when no endpoint is reachable (default: SimComputeNode).
  rt::NodeFactory local_fallback;
};

class WorkerPool {
 public:
  explicit WorkerPool(std::vector<Endpoint> endpoints,
                      WorkerPoolOptions opts = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// NodeFactory for rt::Farm / FarmConfig. The pool must outlive the farm.
  rt::NodeFactory factory();

  /// Build one node now: a RemoteWorkerNode on the first reachable
  /// endpoint, else the local fallback.
  std::unique_ptr<rt::Node> make_node();

  /// Start the crash detector against `farm` (idempotent).
  void start_watch(rt::Farm& farm, double period_wall_s = 0.1);
  void stop_watch();

  std::size_t remote_nodes_created() const { return remote_created_.load(); }
  std::size_t fallback_nodes_created() const {
    return fallback_created_.load();
  }
  /// Total workers the watch thread has declared crashed.
  std::size_t crashes_detected() const { return crashes_.load(); }

 private:
  std::shared_ptr<Transport> connect_one();

  std::vector<Endpoint> endpoints_;
  WorkerPoolOptions opts_;
  std::mutex mu_;  // guards rr_
  std::size_t rr_ = 0;
  std::atomic<std::size_t> remote_created_{0};
  std::atomic<std::size_t> fallback_created_{0};
  std::atomic<std::size_t> crashes_{0};
  std::jthread watch_;
};

// --------------------------------------------------------- bskd processes

/// A spawned bskd worker daemon.
struct BskdProcess {
  int pid = -1;
  std::uint16_t port = 0;
  bool valid() const { return pid > 0 && port != 0; }
};

/// fork/exec `exe_path` on an ephemeral loopback port and wait (up to
/// `wait_wall_s`) for the daemon to report the bound port. Returns an
/// invalid BskdProcess on failure (the child, if any, is reaped).
BskdProcess spawn_bskd(const std::string& exe_path, double wait_wall_s = 5.0);

/// Send `sig` (e.g. SIGTERM, SIGKILL) and reap the daemon. Safe to call on
/// an invalid/already-stopped handle.
void stop_bskd(BskdProcess& p, int sig);

}  // namespace bsk::net
