#pragma once
// EpollServer: one edge-triggered epoll loop serving every inbound wire-v2
// connection — the C10K core that bskd and ClusterHost stand on.
//
// The previous daemon spent a thread per connection (accept → jthread →
// blocking recv loop); at hundreds of connections the stacks and context
// switches dominate. Here a single loop thread owns the listener and every
// connection fd, registered edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET|
// EPOLLRDHUP): nonblocking accept4 drains the backlog, reads run until
// EAGAIN through the per-connection FrameDecoder, and writes flush a
// per-connection SendQueue via scatter/gather sendmsg with short-write
// resume on the next EPOLLOUT edge.
//
// Threading contract:
//   - Handler callbacks (on_hello / on_frame / on_closed) run on the loop
//     thread and must not block — heavy work is handed to an executor,
//     which replies later through send()/send_serialized().
//   - send()/send_serialized()/close_conn() are safe from any thread: they
//     append under the connection's own mutex and try an immediate flush,
//     so replies don't wait for a loop tick. A connection that errors from
//     a writer thread is shut down (not closed — the fd number must stay
//     stable) and the loop reaps it via EPOLLHUP.
//   - The first non-heartbeat frame on a connection must parse as a Hello;
//     anything else closes the connection without a callback. on_closed
//     fires exactly once for every connection that reached on_hello.
//
// Heartbeats: set_heartbeat(conn, period) arms periodic heartbeat frames
// produced by the loop's timer pass (epoll_wait timeout), replacing the
// per-session heartbeat threads of the old daemon.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>

#include "net/transport.hpp"
#include "net/wire.hpp"
#include "support/thread_annotations.hpp"

namespace bsk::net {

struct EpollOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral, readable via port()
  std::size_t max_frame = kDefaultMaxFrame;
  double handshake_timeout_wall_s = 5.0;  ///< close conns that never Hello
  int backlog = 1024;
  /// Pause before retrying accept after fd exhaustion (EMFILE/ENFILE).
  /// An edge-triggered listener gets no further edge for the backlog it
  /// failed to drain, so the retry must come from the timer pass.
  double accept_backoff_wall_s = 0.05;
};

class EpollServer {
 public:
  using ConnId = std::uint64_t;

  /// Connection callbacks, all invoked on the loop thread (see the
  /// threading contract above).
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void on_hello(ConnId c, const Hello& h) = 0;
    virtual void on_frame(ConnId c, Frame&& f) = 0;
    virtual void on_closed(ConnId c) = 0;
  };

  EpollServer(Handler& handler, EpollOptions opts = {});
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  bool valid() const { return lfd_ >= 0 && epfd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Launch the loop thread. Deliberately separate from construction: the
  /// handler typically stores a pointer back to this server, and callbacks
  /// may fire the moment the loop runs — call start() only once every
  /// pointer the callbacks read has been published. Idempotent; no
  /// callbacks fire before start().
  void start();

  /// Close the listener and every connection, then join the loop. No
  /// callbacks fire once stop() begins. Idempotent.
  void stop();

  /// Queue a frame on the connection and flush opportunistically. False if
  /// the connection is unknown or already dying.
  bool send(ConnId c, const Frame& f);

  /// Zero-copy variant: serialize `n` frames of `type` straight into the
  /// connection's send slabs.
  bool send_serialized(ConnId c, FrameType type, std::size_t n,
                       const Transport::SerializeFn& emit);

  /// Flush pending output (bounded by a grace period), then close the
  /// connection; on_closed fires on the loop thread.
  void close_conn(ConnId c);

  /// Arm periodic heartbeat frames on this connection (0 disables).
  void set_heartbeat(ConnId c, double period_wall_s);

  std::size_t connections() const;
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Times the accept path hit fd exhaustion and armed the retry timer
  /// (the EMFILE regression test asserts this moves and recovery happens).
  std::uint64_t accept_backoffs() const {
    return accept_backoffs_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int raw_fd = -1;  ///< loop-thread read path (stable until reap)
    ConnId id = 0;
    FrameDecoder decoder;      // loop thread only
    bool got_hello = false;    // loop thread only
    double opened_at = 0.0;    // loop thread only

    support::Mutex mu{"EpollServer.Conn"};
    SendQueue out BSK_GUARDED_BY(mu);
    int fd BSK_GUARDED_BY(mu) = -1;  ///< -1 once reaped
    bool want_close BSK_GUARDED_BY(mu) = false;
    bool broken BSK_GUARDED_BY(mu) = false;  ///< writer saw a hard error
    double close_deadline BSK_GUARDED_BY(mu) = -1.0;
    // Heartbeat schedule (armed from any thread, driven by the timer pass).
    double hb_period BSK_GUARDED_BY(mu) = 0.0;
    double hb_next BSK_GUARDED_BY(mu) = 0.0;
    std::uint64_t hb_seq BSK_GUARDED_BY(mu) = 0;
  };

  void loop(const std::stop_token& st);
  void accept_ready();
  void read_ready(const std::shared_ptr<Conn>& conn);
  void write_ready(const std::shared_ptr<Conn>& conn);
  void timer_pass(double now);
  void reap(const std::shared_ptr<Conn>& conn);
  bool flush_locked(Conn& conn) BSK_REQUIRES(conn.mu);
  void wake();
  std::shared_ptr<Conn> find(ConnId c) const;

  Handler& handler_;
  EpollOptions opts_;
  int epfd_ = -1;
  int lfd_ = -1;
  int wakefd_ = -1;
  std::uint16_t port_ = 0;

  mutable support::Mutex conns_mu_{"EpollServer.conns"};
  std::map<ConnId, std::shared_ptr<Conn>> conns_ BSK_GUARDED_BY(conns_mu_);
  ConnId next_id_ = 2;  ///< ids 0/1 tag the listener/wake fds in epoll data

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> accept_backoffs_{0};
  std::atomic<bool> stopping_{false};
  // Loop-thread only: accept retry deadline after fd exhaustion (0 = none)
  // and the log-once latch for the condition.
  double accept_backoff_until_ = 0.0;
  bool accept_backoff_logged_ = false;

  std::jthread loop_;
};

}  // namespace bsk::net
