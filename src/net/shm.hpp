#pragma once
// ShmTransport: wire-v2 frames over a shared-memory ring pair.
//
// The colocated fast path of the dataplane. One mapped segment holds two
// fixed-size byte rings (one per direction) plus cache-line-aligned control
// blocks; frames cross in their exact wire encoding — `[u32 len][u32 crc]
// [u8 type][payload]`, CRC checked on the receive side — so the shm path is
// bit-compatible with TCP: the chaos FaultInjector wraps it unchanged and a
// frame captured off either transport is the same bytes.
//
// Waiting is a three-rung ladder tuned for colocated processes on few
// cores: a short spin (peer is mid-write), sched_yield (peer needs the
// core — on a 1-CPU box this is the rung that actually runs and is what
// keeps round-trips in the microsecond range), then a futex sleep on a
// sequence word (non-private futex: it lives in the shared mapping), woken
// by the producer only when the waiter count says someone is parked. A
// frame is published with a single head-pointer store once fully written,
// so a consumer never observes a torn frame; frames larger than the ring
// stream through in chunks with progressive head/tail publication.
//
// Negotiation: a WorkerPool client that resolved its endpoint to the local
// machine sets want_shm in its Hello; bskd creates a named segment
// (shm_open), answers with the name in the HelloAck, and the client
// attaches and unlinks it. The TCP connection the handshake ran on stays
// open as the *anchor*: heartbeats and control frames (Leave, Shutdown at
// daemon stop) still travel over it, its EOF closes the shm transport, and
// idle_seconds() delegates to it — so failure detection is identical in
// both modes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "support/thread_annotations.hpp"

namespace bsk::net {

namespace shm_detail {
struct SegmentHdr;
struct RingCtl;

/// One mapped segment (anonymous for in-process pairs, shm_open-named for
/// cross-process negotiation). Unmaps — and unlinks, when it owns a name —
/// on destruction.
struct Mapping {
  void* mem = nullptr;
  std::size_t len = 0;
  std::string name;          ///< nonempty: POSIX shm object to unlink
  bool unlink_on_close = false;
  ~Mapping();
};
}  // namespace shm_detail

struct ShmOptions {
  std::size_t ring_bytes = 1u << 20;  ///< per-direction ring (pow2-rounded)
  std::size_t max_frame = kDefaultMaxFrame;
  unsigned spin = 64;     ///< wait-ladder rung 1: busy spins
  unsigned yields = 256;  ///< wait-ladder rung 2: sched_yield rounds
};

class ShmTransport final : public Transport {
 public:
  struct Pair {
    std::shared_ptr<ShmTransport> a;
    std::shared_ptr<ShmTransport> b;
  };

  /// Connected endpoint pair over one anonymous shared mapping — the
  /// in-process form (tests, benches): same rings, no shm name.
  static Pair make_pair(ShmOptions opts = {});

  /// Server side of the negotiation: create a named segment and return the
  /// transport plus its name (for the HelloAck). The name embeds the owner
  /// pid and a per-process epoch stamp ("/bsk.shm.<pid>.<epoch>.<n>") so a
  /// recycled pid can never collide with a dead owner's leftovers, and so
  /// reap_stale_shm_segments() can tell live segments from orphans.
  /// Nullptr on failure — the caller falls back to plain TCP.
  static std::shared_ptr<ShmTransport> create_named(std::string& name_out,
                                                    ShmOptions opts = {});

  /// Client side: attach to a named segment from a HelloAck. The segment
  /// name is unlinked once mapped. `anchor` is the TCP transport the
  /// session negotiated on (may be null); it remains the liveness/control
  /// channel. Nullptr on failure — the caller stays on TCP, which the
  /// server serves identically.
  static std::shared_ptr<ShmTransport> attach_named(
      const std::string& name, std::shared_ptr<Transport> anchor,
      ShmOptions opts = {});

  ~ShmTransport() override;

  bool send(const Frame& f) override;
  bool send_many(const Frame* fs, std::size_t n) override;
  bool send_serialized(FrameType type, std::size_t n,
                       const SerializeFn& emit) override;
  RecvStatus recv(Frame& out) override;
  RecvStatus recv_for(Frame& out, double wall_seconds) override;
  void close() override;
  bool closed() const override;
  double idle_seconds() const override;
  TransportStats stats() const override;

  /// Why the inbound stream died, if it died to corruption.
  DecodeError decode_error() const {
    return decode_error_.load(std::memory_order_relaxed);
  }

  /// True once the client side of a create_named/attach_named negotiation
  /// has mapped the segment. The daemon replies over shm only when this is
  /// set — before that (or if the client never attaches and stays on TCP)
  /// writing into the ring would fill a buffer nobody drains.
  bool peer_attached() const;

  std::size_t ring_bytes() const;

 private:
  ShmTransport(std::shared_ptr<shm_detail::Mapping> map, bool creator,
               std::shared_ptr<Transport> anchor, ShmOptions opts);

  shm_detail::SegmentHdr* hdr() const;
  shm_detail::RingCtl& tx_ctl() const;
  shm_detail::RingCtl& rx_ctl() const;
  std::uint8_t* tx_data() const;
  std::uint8_t* rx_data() const;

  bool wait_space_locked(std::uint64_t need) BSK_REQUIRES(send_mu_);
  void copy_in(std::uint64_t at, const std::uint8_t* p, std::size_t n)
      BSK_REQUIRES(send_mu_);
  void publish(std::uint64_t n) BSK_REQUIRES(send_mu_);
  bool ring_write(const std::uint8_t* p, std::size_t n)
      BSK_REQUIRES(send_mu_);
  bool wait_readable(std::size_t need, bool bounded, double deadline,
                     Frame* control_out, RecvStatus* control_status);
  RecvStatus recv_until(Frame& out, bool bounded, double wall_seconds);
  void read_span(std::uint64_t from, std::uint8_t* dst, std::size_t n) const;
  void consume(std::size_t n);
  void fail_decode(DecodeError e);

  std::shared_ptr<shm_detail::Mapping> map_;
  bool creator_ = false;  ///< selects which ring this end produces
  ShmOptions opts_;
  std::shared_ptr<Transport> anchor_;

  support::Mutex send_mu_{"ShmTransport.send"};  ///< serializes tx producers

  std::atomic<DecodeError> decode_error_{DecodeError::None};
  mutable std::atomic<double> last_rx_wall_{0.0};
  mutable std::atomic<std::uint64_t> last_rx_head_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
};

/// Unlink every bsk shm segment in /dev/shm whose embedded owner pid is
/// dead (kill(pid, 0) == ESRCH). Normal lifecycle unlinks the name at
/// attach (or in the creator's destructor), but a SIGKILLed daemon leaks
/// whatever was mid-negotiation — run this at daemon startup so a fleet
/// that is killed and relaunched in a loop cannot slowly fill /dev/shm.
/// Segments owned by live processes (or by pids we cannot probe) are left
/// alone. Returns the number of segments removed.
std::size_t reap_stale_shm_segments();

}  // namespace bsk::net
