#pragma once
// bsk::net transports: frame-oriented, bidirectional, connected endpoints.
//
// A Transport is one end of an established connection. Two backends:
//
//   InprocTransport — a lock-free SPSC ring pair between two endpoints in
//     the same process. No syscalls, no timers: existing tests and benches
//     stay fast and deterministic while exercising the exact frame protocol
//     the TCP backend speaks.
//
//   TcpTransport — a real loopback/LAN socket. A dedicated I/O thread runs
//     a poll()-based event loop over the socket and a self-pipe (so send()
//     wakes the loop immediately instead of waiting out a poll tick),
//     drains a per-connection send queue, and re-frames the inbound byte
//     stream into a bounded Channel<Frame>. connect() takes a timeout and a
//     bounded retry budget.
//
// Timeouts on the transport API are *wall* seconds: liveness and I/O pacing
// are properties of the real machine, not of the simulated clock. (Code
// that waits in simulated time converts with Clock::to_wall first.)
//
// Heartbeat frames are absorbed at this layer — they refresh idle_seconds()
// and are never surfaced to recv(), so every consumer gets liveness
// tracking without protocol noise.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/channel.hpp"
#include "support/thread_annotations.hpp"
#include "support/spsc_ring.hpp"
#include "net/wire.hpp"

struct iovec;  // <sys/uio.h>; SendQueue::gather fills these

namespace bsk::net {

enum class RecvStatus { Ok, Closed, TimedOut };

// --------------------------------------------------------------- sendqueue

/// Slab-chained send buffer shared by the scatter/gather senders (the TCP
/// transport's I/O thread, the epoll server's per-connection state).
/// Writers serialize frames *directly* into the back slab — zero
/// intermediate Frame, zero per-frame heap traffic once the slab pool is
/// warm — and the flusher gathers the front slabs into an iovec array for
/// one sendmsg(), consuming exactly what the kernel accepted so short
/// writes resume where they stopped.
///
/// Not internally synchronized: the owner serializes access with its own
/// send mutex (TcpTransport::out_mu_, EpollServer's per-conn mutex). The
/// take_all/give_spares pair supports the swap pattern: the I/O thread
/// moves every queued slab into a private queue under the lock, writes to
/// the socket lock-free, then donates the drained slab storage back.
class SendQueue {
 public:
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  static constexpr std::size_t kMaxIov = 16;
  static constexpr std::size_t kMaxSpares = 4;

  bool empty() const { return bytes_ == 0; }
  std::size_t bytes() const { return bytes_; }

  /// Serialize one frame into the back slab via build_frame_into. Returns
  /// the encoded size.
  template <typename EmitFn>
  std::size_t build_frame(FrameType type, EmitFn&& emit) {
    const std::size_t n =
        build_frame_into(back_slab(), type, std::forward<EmitFn>(emit));
    bytes_ += n;
    return n;
  }

  /// Append an already-materialized frame's wire bytes.
  void append_frame(const Frame& f);

  /// Move every queued slab from `from` onto the back of this queue.
  void take_all(SendQueue& from);

  /// Donate this queue's spare slab storage to `to` (recycle drained slabs
  /// back to the writer side).
  void give_spares(SendQueue& to);

  /// Fill up to `max` iovecs with the unconsumed front spans. Returns the
  /// count. The spans stay valid until the next mutating call.
  std::size_t gather(iovec* iov, std::size_t max) const;

  /// Drop `n` bytes from the front (what the kernel accepted).
  void consume(std::size_t n);

  void clear();

 private:
  struct Slab {
    std::vector<std::uint8_t> data;
    std::size_t off = 0;  // consumed prefix
  };

  std::vector<std::uint8_t>& back_slab();

  std::deque<Slab> slabs_;
  std::vector<std::vector<std::uint8_t>> spares_;
  std::size_t bytes_ = 0;
};

struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t heartbeats_seen = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueue a frame for delivery. Thread-safe. False once the connection
  /// is closed (locally or by the peer).
  virtual bool send(const Frame& f) = 0;

  /// Enqueue `n` frames as one batch (writev-style coalescing: the TCP
  /// backend encodes the whole batch into its send buffer under a single
  /// lock and wakes its I/O thread once, so the frames leave in as few
  /// segments as the kernel allows). Default: send() per frame. Returns
  /// false once the connection is closed; frames before the failure may
  /// still be delivered.
  virtual bool send_many(const Frame* fs, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      if (!send(fs[i])) return false;
    return true;
  }

  /// Zero-copy batch send: serialize `n` frames of `type` straight into
  /// the transport's send buffer, `emit(i, w)` appending frame i's payload
  /// bytes through the Writer. The default materializes Frames and defers
  /// to send_many — which keeps decorators (chaos FaultInjector) and simple
  /// transports correct without overriding; the TCP/shm/epoll backends
  /// override to eliminate the per-frame heap allocation entirely.
  using SerializeFn = std::function<void(std::size_t, wire::Writer&)>;
  virtual bool send_serialized(FrameType type, std::size_t n,
                               const SerializeFn& emit);

  /// Block until a frame arrives or the connection closes and drains.
  virtual RecvStatus recv(Frame& out) = 0;

  /// recv with a wall-clock timeout (seconds).
  virtual RecvStatus recv_for(Frame& out, double wall_seconds) = 0;

  /// Close this end. recv on the peer drains buffered frames then reports
  /// Closed. Idempotent.
  virtual void close() = 0;

  /// True once either end has closed (peer death included).
  virtual bool closed() const = 0;

  /// Wall seconds since the last frame (heartbeats included) arrived from
  /// the peer — the liveness input of failure detection.
  virtual double idle_seconds() const = 0;

  /// Channel security state (flipped by the SecureReq/SecureAck exchange;
  /// stands in for a real TLS upgrade, which slots in behind this flag).
  bool secured() const { return secured_.load(std::memory_order_relaxed); }
  void mark_secured() { secured_.store(true, std::memory_order_relaxed); }

  virtual TransportStats stats() const = 0;

 protected:
  std::atomic<bool> secured_{false};
};

// ------------------------------------------------------------------ inproc

/// In-process transport: each direction is a lock-free SPSC ring. Sends
/// from multiple threads are serialized by a tiny spinlock on the producer
/// side (the ring itself stays single-producer); receive is single-consumer
/// by contract, matching how every conduit/ABC consumer is structured.
class InprocTransport final : public Transport {
 public:
  struct Pair {
    std::shared_ptr<InprocTransport> a;
    std::shared_ptr<InprocTransport> b;
  };

  /// Create a connected endpoint pair with the given per-direction queue
  /// capacity (rounded up to a power of two).
  static Pair make_pair(std::size_t capacity = 1024);

  bool send(const Frame& f) override;
  RecvStatus recv(Frame& out) override;
  RecvStatus recv_for(Frame& out, double wall_seconds) override;
  void close() override;
  bool closed() const override;
  double idle_seconds() const override { return 0.0; }
  TransportStats stats() const override;

 private:
  struct Queue {
    explicit Queue(std::size_t cap) : ring(cap) {}
    support::SpscRing<Frame> ring;
    std::atomic_flag producer_lock = ATOMIC_FLAG_INIT;
    std::atomic<bool> closed{false};
  };

  InprocTransport(std::shared_ptr<Queue> out, std::shared_ptr<Queue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  RecvStatus recv_until(Frame& out, bool bounded, double wall_seconds);

  std::shared_ptr<Queue> out_;
  std::shared_ptr<Queue> in_;
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
};

// --------------------------------------------------------------------- tcp

struct TcpOptions {
  double connect_timeout_s = 2.0;  ///< per-attempt, wall seconds
  int connect_retries = 10;        ///< bounded retry budget
  double retry_backoff_s = 0.05;   ///< pause between attempts, wall seconds
  std::size_t max_frame = kDefaultMaxFrame;
  std::size_t inbound_capacity = 4096;  ///< parsed-frame queue depth
};

class TcpTransport final : public Transport {
 public:
  /// Adopt an already-connected socket (the accept side).
  explicit TcpTransport(int fd, TcpOptions opts = {});

  /// Connect to host:port with per-attempt timeout and bounded retry.
  /// Returns nullptr when the budget is exhausted.
  static std::unique_ptr<TcpTransport> connect(const std::string& host,
                                               std::uint16_t port,
                                               TcpOptions opts = {});

  ~TcpTransport() override;

  bool send(const Frame& f) override;
  bool send_many(const Frame* fs, std::size_t n) override;
  bool send_serialized(FrameType type, std::size_t n,
                       const SerializeFn& emit) override;
  RecvStatus recv(Frame& out) override;
  RecvStatus recv_for(Frame& out, double wall_seconds) override;
  void close() override;
  bool closed() const override;
  double idle_seconds() const override;
  TransportStats stats() const override;

  /// Why the inbound stream died, if it died to corruption (None while the
  /// connection is healthy or was closed cleanly).
  DecodeError decode_error() const {
    return decode_error_.load(std::memory_order_relaxed);
  }

 private:
  void io_loop();
  void wake();
  void shutdown_fd();

  int fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  TcpOptions opts_;

  support::Mutex out_mu_{"TcpTransport.send"};
  SendQueue outq_ BSK_GUARDED_BY(out_mu_);

  FrameDecoder decoder_;
  support::Channel<Frame> inbound_;

  std::atomic<bool> closed_{false};
  std::atomic<DecodeError> decode_error_{DecodeError::None};
  std::atomic<double> last_rx_wall_{0.0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> heartbeats_{0};

  std::jthread io_;
};

/// Listening socket. Port 0 binds an ephemeral port, readable via port().
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Accept one connection, waiting at most `wall_seconds` (<0 = forever).
  std::unique_ptr<TcpTransport> accept_for(double wall_seconds,
                                           TcpOptions opts = {});

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Monotonic wall seconds (steady clock) — the transport liveness timebase.
double wall_now();

}  // namespace bsk::net
