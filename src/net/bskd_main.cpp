// bskd — the bsk worker daemon.
//
// Hosts farm workers for a parent process speaking the bsk::net wire
// protocol. One TCP connection per hosted worker: the parent's
// RemoteWorkerNode connects, handshakes (Hello/HelloAck), then streams
// TaskMsg frames; bskd runs each task through the node kind the handshake
// requested and replies with a ResultMsg (a WorkerDone-kind reply marks a
// filtered task). Each session thread also beats a heartbeat every
// `heartbeat_wall_s` (from the Hello) so the parent's failure detector can
// tell a long-running task from a dead peer.
//
//   bskd [--port N] [--port-file PATH]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as decimal text once listening — how spawn_bskd() and the
// two-process example learn where to connect.

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/remote_conduit.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "rt/node.hpp"
#include "support/clock.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

/// Instantiate the worker node a session asked for.
std::unique_ptr<bsk::rt::Node> make_node(const std::string& kind) {
  using bsk::rt::LambdaNode;
  using bsk::rt::SimComputeNode;
  using bsk::rt::Task;
  if (kind == "echo")
    return std::make_unique<LambdaNode>(
        [](Task t) -> std::optional<Task> { return t; });
  if (kind == "filter_odd")
    return std::make_unique<LambdaNode>([](Task t) -> std::optional<Task> {
      if (t.id % 2 == 1) return std::nullopt;
      return t;
    });
  return std::make_unique<SimComputeNode>();  // "sim" and anything unknown
}

void serve_session(std::unique_ptr<bsk::net::TcpTransport> owned,
                   std::uint64_t session_id) {
  using namespace bsk::net;
  std::shared_ptr<TcpTransport> tp{std::move(owned)};

  Hello hello;
  if (!server_handshake(*tp, 5.0, session_id, &hello)) {
    tp->close();
    return;
  }
  if (hello.clock_scale > 0.0) bsk::support::Clock::set_scale(hello.clock_scale);
  const double hb =
      hello.heartbeat_wall_s > 0.0 ? hello.heartbeat_wall_s : 0.25;

  auto node = make_node(hello.node_kind);
  node->on_start();

  // Heartbeats on their own thread: a long task must not silence them.
  std::jthread beater([tp, hb](std::stop_token st) {
    std::uint64_t seq = 0;
    while (!st.stop_requested() && !tp->closed()) {
      tp->send(make_heartbeat({seq++, wall_now()}));
      std::this_thread::sleep_for(std::chrono::duration<double>(hb));
    }
  });

  bool running = true;
  while (running && !g_stop.load()) {
    Frame f;
    switch (tp->recv_for(f, 0.25)) {
      case RecvStatus::Closed:
        running = false;
        continue;
      case RecvStatus::TimedOut:
        continue;
      case RecvStatus::Ok:
        break;
    }
    switch (f.type) {
      case FrameType::TaskMsg: {
        auto t = parse_task(f);
        if (!t) break;  // malformed: drop
        auto r = node->process(std::move(*t));
        const Frame reply = r ? make_task(*r, FrameType::ResultMsg)
                              : make_task(bsk::rt::Task::worker_done(),
                                          FrameType::ResultMsg);
        if (!tp->send(reply)) running = false;
        break;
      }
      case FrameType::SecureReq:
        tp->mark_secured();
        tp->send(Frame{FrameType::SecureAck, {}});
        break;
      case FrameType::Shutdown:
        running = false;
        break;
      default:
        break;  // not meaningful on a worker channel
    }
  }

  node->on_stop();
  beater.request_stop();
  tp->close();
}

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--port N] [--port-file PATH]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v > 65535) {
        std::fprintf(stderr, "bskd: invalid port '%s'\n", s);
        return usage(argv[0]);
      }
      port = static_cast<std::uint16_t>(v);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  bsk::net::TcpListener listener(port);
  if (!listener.valid()) {
    std::fprintf(stderr, "bskd: cannot listen on port %u\n", port);
    return 1;
  }
  std::fprintf(stderr, "bskd: listening on 127.0.0.1:%u\n", listener.port());
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << listener.port() << '\n';
  }

  std::vector<std::jthread> sessions;
  std::uint64_t next_session = 1;
  while (!g_stop.load()) {
    auto tp = listener.accept_for(0.25);
    if (!tp) continue;
    sessions.emplace_back(serve_session, std::move(tp), next_session++);
  }
  listener.close();
  return 0;  // jthreads join; sessions see g_stop and wind down
}
