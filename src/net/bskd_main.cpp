// bskd — the bsk worker daemon.
//
// Hosts farm workers for a parent process speaking the bsk::net wire
// protocol. One TCP connection per hosted worker: the parent's
// RemoteWorkerNode connects, handshakes (Hello/HelloAck), then streams
// TaskMsg frames; bskd runs each task through the node kind the handshake
// requested and replies with a ResultMsg (a WorkerDone-kind reply marks a
// filtered task). Each session thread also beats a heartbeat every
// `heartbeat_wall_s` (from the Hello) so the parent's failure detector can
// tell a long-running task from a dead peer.
//
// Reliability: tasks carry sequence numbers; bskd executes each sequence at
// most once and keeps a bounded cache of recent results, so a retransmitted
// task (lost TaskMsg, lost ResultMsg, or duplication on a faulty wire) gets
// its cached result resent instead of re-executing. A connection that dies
// without a Shutdown parks its session for --session-linger seconds: a
// client reconnecting with the session id (and the right epoch — stale
// zombies are fenced) re-attaches the same worker node and the same dedup
// state, so a transient partition costs a replay of unacked tasks, not a
// worker replacement.
//
//   bskd [--port N] [--port-file PATH] [--session-linger S]
//        [--trace-file PATH] [--cluster] [--join HOST:PORT[,HOST:PORT...]]
//        [--cores N] [--core-speed X] [--fanout K] [--beacon PORT]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as decimal text once listening — how spawn_bskd() and the
// two-process example learn where to connect.
//
// Observability: a connection whose Hello carries role 2 is a *stats
// channel* — it gets StatsReq/StatsRep RPC service instead of a worker
// session, answering with this process's Prometheus exposition, metrics
// JSONL, or decision-trace JSONL (spans + event log), so a parent process
// can fold the daemon's half of the story into one merged trace. A role-2
// channel also answers MembershipReq with the live cluster view.
//
// Clustering (bsk::cluster): --join seeds (or bare --cluster for a
// seed-less first node, optionally with a --beacon UDP discovery port)
// starts a ClusterNode gossiping this daemon's membership record —
// host:port plus the node weight (--cores × --core-speed) the weighted
// hierarchy election ranks on. Role-3 connections are gossip exchanges
// served by the cluster node; on orderly shutdown the daemon broadcasts a
// Leave frame so peers deregister it immediately instead of waiting out
// the suspicion window.

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.hpp"
#include "support/thread_annotations.hpp"
#include "net/remote_conduit.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/node.hpp"
#include "support/clock.hpp"
#include "support/event_log.hpp"

namespace {

std::atomic<bool> g_stop{false};

/// The fleet-membership engine; null when clustering is off.
std::unique_ptr<bsk::cluster::ClusterNode> g_cluster;

void on_signal(int) { g_stop.store(true); }

/// Instantiate the worker node a session asked for.
std::unique_ptr<bsk::rt::Node> make_node(const std::string& kind) {
  using bsk::rt::LambdaNode;
  using bsk::rt::SimComputeNode;
  using bsk::rt::Task;
  if (kind == "echo")
    return std::make_unique<LambdaNode>(
        [](Task t) -> std::optional<Task> { return t; });
  if (kind == "filter_odd")
    return std::make_unique<LambdaNode>([](Task t) -> std::optional<Task> {
      if (t.id % 2 == 1) return std::nullopt;
      return t;
    });
  return std::make_unique<SimComputeNode>();  // "sim" and anything unknown
}

/// Cached results kept per session for duplicate-seq resends. Far larger
/// than any client credit window, so a still-wanted result is never evicted.
constexpr std::size_t kResultCacheCap = 256;

/// One hosted worker: the node, its dedup state, and whichever connection
/// currently owns it. Survives connection death (parked) until reaped.
struct Session {
  std::uint64_t id = 0;
  std::string kind;

  bsk::support::Mutex mu;  // guards everything below
  std::uint32_t epoch = 0;
  std::unique_ptr<bsk::rt::Node> node;
  bool secured = false;
  std::map<std::uint64_t, bsk::net::Frame> results;  // seq → cached reply
  std::deque<std::uint64_t> result_order;            // eviction FIFO
  std::uint64_t dups_suppressed = 0;
  std::shared_ptr<bsk::net::TcpTransport> active;  // null while parked
  /// Atomic so the reaper can scan without the session lock (which task
  /// execution holds for the duration of a task).
  std::atomic<double> parked_at{-1.0};
};

class SessionRegistry {
 public:
  std::shared_ptr<Session> create(const std::string& kind) {
    auto s = std::make_shared<Session>();
    s->kind = kind;
    s->node = make_node(kind);
    s->node->on_start();
    bsk::support::MutexLock lk(mu_);
    s->id = next_++;
    sessions_[s->id] = s;
    return s;
  }

  /// Look up a session for resume. The epoch fence rejects reconnects that
  /// present a stale view (a zombie from before an earlier re-attach).
  std::shared_ptr<Session> find_for_resume(std::uint64_t id) {
    bsk::support::MutexLock lk(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
  }

  /// Park a dead connection's session (unless a newer epoch stole it).
  void park(const std::shared_ptr<Session>& s, std::uint32_t my_epoch) {
    bsk::support::MutexLock lk(s->mu);
    if (s->epoch != my_epoch) return;  // re-attached elsewhere: not ours
    s->active.reset();
    s->parked_at = bsk::net::wall_now();
  }

  /// Orderly shutdown: retire the node and forget the session.
  void erase(const std::shared_ptr<Session>& s, std::uint32_t my_epoch) {
    {
      bsk::support::MutexLock lk(s->mu);
      if (s->epoch != my_epoch) return;
      if (s->node) s->node->on_stop();
    }
    bsk::support::MutexLock lk(mu_);
    sessions_.erase(s->id);
  }

  /// Drop sessions parked longer than `linger_s` — the client's grace
  /// window has certainly closed; it will have recruited a replacement.
  void reap(double linger_s) {
    std::vector<std::shared_ptr<Session>> dead;
    {
      bsk::support::MutexLock lk(mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        const double parked = it->second->parked_at.load();
        if (parked >= 0.0 && bsk::net::wall_now() - parked > linger_s) {
          dead.push_back(it->second);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& s : dead) {
      bsk::support::MutexLock slk(s->mu);
      if (s->node) s->node->on_stop();
    }
  }

 private:
  bsk::support::Mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_ = 1;
};

SessionRegistry g_registry;

/// Execute (or dedup) one sequenced task and send the reply. Caller holds
/// nothing; the session lock serializes execution across connections.
void handle_task(Session& s, bsk::net::TcpTransport& tp,
                 const bsk::net::Frame& f) {
  using namespace bsk::net;
  auto parsed = parse_task_seq(f);
  if (!parsed) return;  // malformed (corrupt payload): drop, stream lives
  const std::uint64_t seq = parsed->first;

  bsk::support::MutexLock lk(s.mu);
  if (seq != 0) {
    if (auto it = s.results.find(seq); it != s.results.end()) {
      // Already executed: a retransmit or wire duplicate. Resend the cached
      // result — never re-execute (at-most-once execution per seq).
      ++s.dups_suppressed;
      tp.send(it->second);
      return;
    }
  }
  auto r = s.node->process(std::move(parsed->second));
  const Frame reply = r ? make_task(*r, FrameType::ResultMsg, seq)
                        : make_task(bsk::rt::Task::worker_done(),
                                    FrameType::ResultMsg, seq);
  if (seq != 0) {
    s.results.emplace(seq, reply);
    s.result_order.push_back(seq);
    while (s.result_order.size() > kResultCacheCap) {
      s.results.erase(s.result_order.front());
      s.result_order.pop_front();
    }
  }
  tp.send(reply);
}

/// Render one obs snapshot as text for a StatsRep.
std::string stats_text(bsk::net::StatsRequest::What what) {
  std::ostringstream os;
  switch (what) {
    case bsk::net::StatsRequest::What::Prometheus:
      bsk::obs::MetricsRegistry::global().write_prometheus(os);
      break;
    case bsk::net::StatsRequest::What::MetricsJsonl:
      bsk::obs::MetricsRegistry::global().write_jsonl(os);
      break;
    case bsk::net::StatsRequest::What::TraceJsonl:
      // Decision spans plus the raw event log: everything the merge tool
      // needs to causally join this process's story to the parent's.
      bsk::obs::TraceLog::global().dump_jsonl(os);
      bsk::support::global_event_log().dump_jsonl(os);
      break;
  }
  return os.str();
}

/// Role-2 channel: answer StatsReq pulls until the peer goes away.
void serve_stats(bsk::net::TcpTransport& tp) {
  using namespace bsk::net;
  while (!g_stop.load()) {
    Frame f;
    switch (tp.recv_for(f, 0.25)) {
      case RecvStatus::Closed:
        return;
      case RecvStatus::TimedOut:
        continue;
      case RecvStatus::Ok:
        break;
    }
    if (f.type == FrameType::Shutdown) return;
    if (f.type == FrameType::MembershipReq) {
      const auto seq = parse_membership_req(f);
      if (!seq) continue;
      MembershipReply rep;
      rep.seq = *seq;
      if (g_cluster) {
        rep.ok = true;
        rep.view = g_cluster->view();
      }
      tp.send(make_membership_rep(rep));
      continue;
    }
    const auto req = parse_stats_req(f);
    if (!req) continue;  // not meaningful on a stats channel
    StatsReply rep;
    rep.seq = req->seq;
    rep.ok = true;
    rep.text = stats_text(req->what);
    tp.send(make_stats_rep(rep));
  }
}

void serve_session(std::unique_ptr<bsk::net::TcpTransport> owned) {
  using namespace bsk::net;
  std::shared_ptr<TcpTransport> tp{std::move(owned)};

  // Handshake (resume-aware; server_handshake() covers only the fresh
  // path, so it is inlined here).
  Frame hf;
  if (tp->recv_for(hf, 5.0) != RecvStatus::Ok ||
      hf.type != FrameType::Hello) {
    tp->close();
    return;
  }
  const auto hello = parse_hello(hf);
  if (!hello || hello->magic != kMagic ||
      hello->version != kProtocolVersion) {
    HelloAck nak;
    nak.ok = false;
    tp->send(make_hello_ack(nak));
    tp->close();
    return;
  }
  if (hello->clock_scale > 0.0)
    bsk::support::Clock::set_scale(hello->clock_scale);
  if (hello->role == 2) {
    HelloAck ack;  // no worker session behind a stats channel
    tp->send(make_hello_ack(ack));
    serve_stats(*tp);
    tp->close();
    return;
  }
  if (hello->role == 3) {
    HelloAck ack;  // gossip channel: refused when clustering is off
    ack.ok = g_cluster != nullptr;
    tp->send(make_hello_ack(ack));
    if (g_cluster) g_cluster->serve(*tp);
    tp->close();
    return;
  }
  const double hb =
      hello->heartbeat_wall_s > 0.0 ? hello->heartbeat_wall_s : 0.25;

  std::shared_ptr<Session> session;
  std::uint32_t my_epoch = 0;
  bool resumed = false;
  if (hello->resume_session != 0) {
    if (auto s = g_registry.find_for_resume(hello->resume_session)) {
      bsk::support::MutexLock lk(s->mu);
      if (s->epoch == hello->resume_epoch) {
        // Steal the session from whatever connection held it (a half-dead
        // one during an asymmetric partition, or a parked slot). Closing
        // the old transport sends its serve thread to park(), where the
        // epoch bump makes it a no-op.
        if (s->active) s->active->close();
        my_epoch = ++s->epoch;
        s->active = tp;
        s->parked_at = -1.0;
        // Everything the client has acknowledged is gone for good.
        while (!s->result_order.empty() &&
               s->result_order.front() <= hello->last_acked_seq) {
          s->results.erase(s->result_order.front());
          s->result_order.pop_front();
        }
        if (s->secured) tp->mark_secured();
        session = s;
        resumed = true;
      }
    }
  }
  if (!session) {
    session = g_registry.create(hello->node_kind);
    bsk::support::MutexLock lk(session->mu);
    my_epoch = ++session->epoch;
    session->active = tp;
  }

  HelloAck ack;
  ack.session = session->id;
  ack.epoch = my_epoch;
  ack.resumed = resumed;
  tp->send(make_hello_ack(ack));
  bsk::support::global_event_log().record(
      "bskd", resumed ? "sessionResume" : "sessionStart",
      static_cast<double>(session->id), session->kind);

  // Heartbeats on their own thread: a long task must not silence them.
  std::jthread beater([tp, hb](std::stop_token st) {
    std::uint64_t seq = 0;
    while (!st.stop_requested() && !tp->closed()) {
      tp->send(make_heartbeat({seq++, wall_now()}));
      std::this_thread::sleep_for(std::chrono::duration<double>(hb));
    }
  });

  bool clean_shutdown = false;
  bool running = true;
  while (running && !g_stop.load()) {
    Frame f;
    switch (tp->recv_for(f, 0.25)) {
      case RecvStatus::Closed:
        running = false;
        continue;
      case RecvStatus::TimedOut:
        continue;
      case RecvStatus::Ok:
        break;
    }
    switch (f.type) {
      case FrameType::TaskMsg:
        handle_task(*session, *tp, f);
        break;
      case FrameType::SecureReq: {
        tp->mark_secured();
        bsk::support::MutexLock lk(session->mu);
        session->secured = true;
        tp->send(Frame{FrameType::SecureAck, {}});
        break;
      }
      case FrameType::Shutdown:
        clean_shutdown = true;
        running = false;
        break;
      default:
        break;  // not meaningful on a worker channel
    }
  }

  beater.request_stop();
  if (clean_shutdown || g_stop.load()) {
    if (!clean_shutdown && !tp->closed()) {
      // The daemon is going down while the client still lives: say goodbye
      // so the client fails the worker over immediately instead of burning
      // its reconnect grace window against a corpse.
      LeaveMsg bye;
      bye.self.port = 0;  // identity is the connection; port unused here
      tp->send(make_leave(bye));
    }
    bsk::support::global_event_log().record(
        "bskd", "sessionEnd", static_cast<double>(session->id));
    g_registry.erase(session, my_epoch);
  } else {
    // Connection died without a goodbye: park the session so a client
    // riding out a transient partition can resume it.
    bsk::support::global_event_log().record(
        "bskd", "sessionPark", static_cast<double>(session->id));
    g_registry.park(session, my_epoch);
  }
  tp->close();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--port-file PATH] [--session-linger S]"
               " [--trace-file PATH] [--cluster]"
               " [--join HOST:PORT[,HOST:PORT...]] [--cores N]"
               " [--core-speed X] [--fanout K] [--beacon PORT]\n",
               argv0);
  return 2;
}

/// Parse "host:port" (host defaults to loopback when omitted: ":7000").
std::optional<bsk::net::Endpoint> parse_endpoint(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  bsk::net::Endpoint ep;
  if (colon > 0) ep.host = s.substr(0, colon);
  const std::string port = s.substr(colon + 1);
  char* end = nullptr;
  const unsigned long v = std::strtoul(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || v == 0 || v > 65535)
    return std::nullopt;
  ep.port = static_cast<std::uint16_t>(v);
  return ep;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string port_file;
  std::string trace_file;
  double session_linger_s = 10.0;
  bool cluster = false;
  bsk::cluster::ClusterOptions copts;
  std::uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  double core_speed = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cluster") {
      cluster = true;
    } else if (arg == "--join" && i + 1 < argc) {
      cluster = true;
      std::stringstream ss(argv[++i]);
      std::string one;
      while (std::getline(ss, one, ',')) {
        const auto ep = parse_endpoint(one);
        if (!ep) {
          std::fprintf(stderr, "bskd: invalid seed '%s'\n", one.c_str());
          return usage(argv[0]);
        }
        copts.seeds.push_back(*ep);
      }
    } else if (arg == "--cores" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bskd: invalid cores '%s'\n", s);
        return usage(argv[0]);
      }
      cores = static_cast<std::uint32_t>(v);
    } else if (arg == "--core-speed" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v <= 0.0) {
        std::fprintf(stderr, "bskd: invalid core speed '%s'\n", s);
        return usage(argv[0]);
      }
      core_speed = v;
    } else if (arg == "--fanout" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bskd: invalid fanout '%s'\n", s);
        return usage(argv[0]);
      }
      copts.fanout = static_cast<std::size_t>(v);
    } else if (arg == "--beacon" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0 || v > 65535) {
        std::fprintf(stderr, "bskd: invalid beacon port '%s'\n", s);
        return usage(argv[0]);
      }
      cluster = true;
      copts.beacon_port = static_cast<std::uint16_t>(v);
    } else if (arg == "--port" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v > 65535) {
        std::fprintf(stderr, "bskd: invalid port '%s'\n", s);
        return usage(argv[0]);
      }
      port = static_cast<std::uint16_t>(v);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--trace-file" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--session-linger" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v < 0.0) {
        std::fprintf(stderr, "bskd: invalid linger '%s'\n", s);
        return usage(argv[0]);
      }
      session_linger_s = v;
    } else {
      return usage(argv[0]);
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  bsk::net::TcpListener listener(port);
  if (!listener.valid()) {
    std::fprintf(stderr, "bskd: cannot listen on port %u\n", port);
    return 1;
  }
  std::fprintf(stderr, "bskd: listening on 127.0.0.1:%u\n", listener.port());
  bsk::obs::TraceLog::global().set_process_tag(
      "bskd:" + std::to_string(listener.port()));
  if (cluster) {
    bsk::net::Member self;
    self.host = "127.0.0.1";
    self.port = listener.port();
    self.cores = cores;
    self.core_speed = core_speed;
    const std::size_t n_seeds = copts.seeds.size();
    g_cluster =
        std::make_unique<bsk::cluster::ClusterNode>(self, std::move(copts));
    g_cluster->start();
    std::fprintf(stderr, "bskd: cluster node %s (weight %.1f, %zu seeds)\n",
                 g_cluster->self_key().c_str(),
                 static_cast<double>(cores) * core_speed, n_seeds);
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << listener.port() << '\n';
  }

  {
    std::vector<std::jthread> sessions;
    while (!g_stop.load()) {
      auto tp = listener.accept_for(0.25);
      g_registry.reap(session_linger_s);
      if (!tp) continue;
      sessions.emplace_back(serve_session, std::move(tp));
    }
    listener.close();
  }  // jthreads join; sessions see g_stop and wind down

  if (g_cluster) {
    // Orderly departure: tell every peer we are going (immediate
    // deregistration) instead of making them wait out suspicion.
    g_cluster->stop(/*broadcast_leave=*/true);
    g_cluster.reset();
  }

  if (!trace_file.empty()) {
    std::ofstream out(trace_file, std::ios::trunc);
    out << stats_text(bsk::net::StatsRequest::What::TraceJsonl);
  }
  return 0;
}
