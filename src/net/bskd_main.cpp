// bskd — the bsk worker daemon.
//
// Hosts farm workers for a parent process speaking the bsk::net wire
// protocol. One TCP connection per hosted worker: the parent's
// RemoteWorkerNode connects, handshakes (Hello/HelloAck), then streams
// TaskMsg frames; bskd runs each task through the node kind the handshake
// requested and replies with a ResultMsg (a WorkerDone-kind reply marks a
// filtered task). The daemon beats a heartbeat every `heartbeat_wall_s`
// (from the Hello) on each worker connection so the parent's failure
// detector can tell a long-running task from a dead peer.
//
// Architecture: one edge-triggered epoll loop (EpollServer) owns every
// connection — accept, framing, heartbeats, and flow control all happen on
// that single thread, so the daemon holds thousands of connections with a
// bounded thread count. Work that can block (task execution holds the
// session lock for the task's duration) runs on a lazily-grown executor
// pool capped by --workers: each connection owns an ordered inbox of work
// items (handshake, frames, close) that at most one executor drains at a
// time, preserving per-connection ordering without a thread per connection.
//
// Colocated fast path: a Hello carrying want_shm makes bskd create a named
// shared-memory segment (ShmTransport::create_named) and advertise it in
// the HelloAck; the client attaches and task/result frames then bypass the
// kernel entirely. The TCP connection stays open as the anchor — heartbeats
// and Leave still travel over it, and its death closes the shm session.
//
// Reliability: tasks carry sequence numbers; bskd executes each sequence at
// most once and keeps a bounded cache of recent results, so a retransmitted
// task (lost TaskMsg, lost ResultMsg, or duplication on a faulty wire) gets
// its cached result resent instead of re-executing. A connection that dies
// without a Shutdown parks its session for --session-linger seconds: a
// client reconnecting with the session id (and the right epoch — stale
// zombies are fenced) re-attaches the same worker node and the same dedup
// state, so a transient partition costs a replay of unacked tasks, not a
// worker replacement.
//
//   bskd [--port N] [--port-file PATH] [--session-linger S] [--workers N]
//        [--trace-file PATH] [--cluster] [--join HOST:PORT[,HOST:PORT...]]
//        [--cores N] [--core-speed X] [--fanout K] [--beacon PORT]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port as decimal text once listening — how spawn_bskd() and the
// two-process example learn where to connect.
//
// Observability: a connection whose Hello carries role 2 is a *stats
// channel* — it gets StatsReq/StatsRep RPC service instead of a worker
// session, answering with this process's Prometheus exposition, metrics
// JSONL, or decision-trace JSONL (spans + event log), so a parent process
// can fold the daemon's half of the story into one merged trace. A role-2
// channel also answers MembershipReq with the live cluster view.
//
// Clustering (bsk::cluster): --join seeds (or bare --cluster for a
// seed-less first node, optionally with a --beacon UDP discovery port)
// starts a ClusterNode gossiping this daemon's membership record —
// host:port plus the node weight (--cores × --core-speed) the weighted
// hierarchy election ranks on. Role-3 connections are gossip exchanges
// answered inline on the loop; on orderly shutdown the daemon broadcasts a
// Leave frame so peers deregister it immediately instead of waiting out
// the suspicion window.

#include <signal.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.hpp"
#include "net/epoll_server.hpp"
#include "net/remote_conduit.hpp"
#include "net/resume_core.hpp"
#include "net/shm.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/node.hpp"
#include "support/clock.hpp"
#include "support/event_log.hpp"
#include "support/thread_annotations.hpp"

namespace {

std::atomic<bool> g_stop{false};

/// The fleet-membership engine; null when clustering is off.
std::unique_ptr<bsk::cluster::ClusterNode> g_cluster;

/// The epoll loop serving every connection; set once before serving starts,
/// cleared at shutdown (the reply seam for sessions and stats channels).
bsk::net::EpollServer* g_server = nullptr;

void on_signal(int) { g_stop.store(true); }

/// Instantiate the worker node a session asked for.
std::unique_ptr<bsk::rt::Node> make_node(const std::string& kind) {
  using bsk::rt::LambdaNode;
  using bsk::rt::SimComputeNode;
  using bsk::rt::Task;
  if (kind == "echo")
    return std::make_unique<LambdaNode>(
        [](Task t) -> std::optional<Task> { return t; });
  if (kind == "filter_odd")
    return std::make_unique<LambdaNode>([](Task t) -> std::optional<Task> {
      if (t.id % 2 == 1) return std::nullopt;
      return t;
    });
  return std::make_unique<SimComputeNode>();  // "sim" and anything unknown
}

/// Cached results kept per session for duplicate-seq resends. Far larger
/// than any client credit window, so a still-wanted result is never evicted.
constexpr std::size_t kResultCacheCap = 256;

/// One hosted worker: the node, its dedup state, and whichever connection
/// currently owns it. Survives connection death (parked) until reaped.
/// The epoch fence and the dedup cache live in net::SessionCore — the pure
/// protocol state the model checker (analysis/mc) drives directly.
struct Session {
  std::uint64_t id = 0;
  std::string kind;

  bsk::support::Mutex mu{"bskd.Session"};
  bsk::net::SessionCore core BSK_GUARDED_BY(mu){kResultCacheCap};
  std::unique_ptr<bsk::rt::Node> node BSK_GUARDED_BY(mu);
  bool secured BSK_GUARDED_BY(mu) = false;
  /// The epoll connection owning this session (0 while parked).
  bsk::net::EpollServer::ConnId conn BSK_GUARDED_BY(mu) = 0;
  /// Colocated fast path, if negotiated; replies prefer it once attached.
  std::shared_ptr<bsk::net::ShmTransport> shm BSK_GUARDED_BY(mu);
  /// Atomic so the reaper can scan without the session lock (which task
  /// execution holds for the duration of a task).
  std::atomic<double> parked_at{-1.0};
};

/// Send a frame back to the session's client: over the shm ring when the
/// client has attached one (bypassing the kernel), else over the epoll
/// connection. A never-attached segment is skipped — writing into a ring
/// nobody drains would just fill it.
bool reply_to(Session& s, const bsk::net::Frame& f) BSK_REQUIRES(s.mu) {
  if (s.shm && s.shm->peer_attached() && !s.shm->closed())
    return s.shm->send(f);
  return s.conn != 0 && g_server != nullptr && g_server->send(s.conn, f);
}

class SessionRegistry {
 public:
  std::shared_ptr<Session> create(const std::string& kind) {
    auto s = std::make_shared<Session>();
    s->kind = kind;
    {
      bsk::support::MutexLock slk(s->mu);
      s->node = make_node(kind);
      s->node->on_start();
    }
    bsk::support::MutexLock lk(mu_);
    s->id = next_++;
    sessions_[s->id] = s;
    return s;
  }

  /// Look up a session for resume. The epoch fence rejects reconnects that
  /// present a stale view (a zombie from before an earlier re-attach).
  std::shared_ptr<Session> find_for_resume(std::uint64_t id) {
    bsk::support::MutexLock lk(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
  }

  /// Park a dead connection's session (unless a newer epoch stole it).
  void park(const std::shared_ptr<Session>& s, std::uint32_t my_epoch) {
    bsk::support::MutexLock lk(s->mu);
    if (s->core.epoch() != my_epoch) return;  // re-attached elsewhere
    s->conn = 0;
    if (s->shm) {
      s->shm->close();  // a resume renegotiates a fresh segment
      s->shm.reset();
    }
    s->parked_at = bsk::net::wall_now();
  }

  /// Orderly shutdown: retire the node and forget the session.
  void erase(const std::shared_ptr<Session>& s, std::uint32_t my_epoch) {
    {
      bsk::support::MutexLock lk(s->mu);
      if (s->core.epoch() != my_epoch) return;
      if (s->shm) {
        s->shm->close();
        s->shm.reset();
      }
      if (s->node) s->node->on_stop();
    }
    bsk::support::MutexLock lk(mu_);
    sessions_.erase(s->id);
  }

  /// Drop sessions parked longer than `linger_s` — the client's grace
  /// window has certainly closed; it will have recruited a replacement.
  void reap(double linger_s) {
    std::vector<std::shared_ptr<Session>> dead;
    {
      bsk::support::MutexLock lk(mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        const double parked = it->second->parked_at.load();
        if (parked >= 0.0 && bsk::net::wall_now() - parked > linger_s) {
          dead.push_back(it->second);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& s : dead) {
      bsk::support::MutexLock slk(s->mu);
      if (s->node) s->node->on_stop();
    }
  }

  std::vector<std::shared_ptr<Session>> snapshot() {
    bsk::support::MutexLock lk(mu_);
    std::vector<std::shared_ptr<Session>> out;
    out.reserve(sessions_.size());
    for (auto& [id, s] : sessions_) out.push_back(s);
    return out;
  }

  /// Daemon shutdown: retire every node.
  void stop_all() {
    std::map<std::uint64_t, std::shared_ptr<Session>> all;
    {
      bsk::support::MutexLock lk(mu_);
      all.swap(sessions_);
    }
    for (auto& [id, s] : all) {
      bsk::support::MutexLock slk(s->mu);
      if (s->shm) {
        s->shm->close();
        s->shm.reset();
      }
      if (s->node) s->node->on_stop();
    }
  }

 private:
  bsk::support::Mutex mu_{"bskd.SessionRegistry"};
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_
      BSK_GUARDED_BY(mu_);
  std::uint64_t next_ BSK_GUARDED_BY(mu_) = 1;
};

SessionRegistry g_registry;

/// Execute (or dedup) one sequenced task and send the reply. Caller holds
/// nothing; the session lock serializes execution across connections.
void handle_task(Session& s, const bsk::net::Frame& f) {
  using namespace bsk::net;
  auto parsed = parse_task_seq(f);
  if (!parsed) return;  // malformed (corrupt payload): drop, stream lives
  const std::uint64_t seq = parsed->first;

  bsk::support::MutexLock lk(s.mu);
  if (const Frame* cached = s.core.admit(seq)) {
    // Already executed: a retransmit or wire duplicate. Resend the cached
    // result — never re-execute (at-most-once execution per seq).
    reply_to(s, *cached);
    return;
  }
  auto r = s.node->process(std::move(parsed->second));
  const Frame reply = r ? make_task(*r, FrameType::ResultMsg, seq)
                        : make_task(bsk::rt::Task::worker_done(),
                                    FrameType::ResultMsg, seq);
  s.core.cache(seq, reply);
  reply_to(s, reply);
}

/// Render one obs snapshot as text for a StatsRep.
std::string stats_text(bsk::net::StatsRequest::What what) {
  std::ostringstream os;
  switch (what) {
    case bsk::net::StatsRequest::What::Prometheus:
      bsk::obs::MetricsRegistry::global().write_prometheus(os);
      break;
    case bsk::net::StatsRequest::What::MetricsJsonl:
      bsk::obs::MetricsRegistry::global().write_jsonl(os);
      break;
    case bsk::net::StatsRequest::What::TraceJsonl:
      // Decision spans plus the raw event log: everything the merge tool
      // needs to causally join this process's story to the parent's.
      bsk::obs::TraceLog::global().dump_jsonl(os);
      bsk::support::global_event_log().dump_jsonl(os);
      break;
  }
  return os.str();
}

/// Bounded, lazily-grown worker pool. The epoll loop hands every step that
/// can block here (task execution holds the session lock for the task's
/// duration), so the daemon's thread count is bounded by --workers instead
/// of by connection count. Threads spawn only when work outruns the idle
/// set, so a quiet daemon stays tiny.
class ExecutorPool {
 public:
  explicit ExecutorPool(std::size_t cap)
      : cap_(std::max<std::size_t>(1, cap)) {}
  ~ExecutorPool() { stop(); }

  void submit(std::function<void()> fn) {
    {
      bsk::support::MutexLock lk(mu_);
      if (stopping_) return;
      queue_.push_back(std::move(fn));
      if (idle_ == 0 && threads_.size() < cap_)
        threads_.emplace_back(
            [this](const std::stop_token& st) { run(st); });
    }
    cv_.notify_one();
  }

  /// Drain the queue, then join every worker. Idempotent.
  void stop() {
    std::vector<std::jthread> workers;
    {
      bsk::support::MutexLock lk(mu_);
      stopping_ = true;
      workers.swap(threads_);
    }
    cv_.notify_all();
    workers.clear();  // joins (each worker drains, then exits)
  }

 private:
  void run(const std::stop_token& st) {
    for (;;) {
      std::function<void()> fn;
      {
        bsk::support::MutexLock lk(mu_);
        while (queue_.empty()) {
          if (stopping_ || st.stop_requested()) return;
          ++idle_;
          cv_.wait_for(mu_, std::chrono::milliseconds(100));
          --idle_;
        }
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
    }
  }

  const std::size_t cap_;
  mutable bsk::support::Mutex mu_{"bskd.ExecutorPool"};
  bsk::support::CondVar cv_;
  std::deque<std::function<void()>> queue_ BSK_GUARDED_BY(mu_);
  std::vector<std::jthread> threads_ BSK_GUARDED_BY(mu_);
  std::size_t idle_ BSK_GUARDED_BY(mu_) = 0;
  bool stopping_ BSK_GUARDED_BY(mu_) = false;
};

/// The daemon's connection brain: EpollServer handler callbacks append
/// typed work items (handshake, frame, close) to a per-connection inbox,
/// and at most one executor at a time drains each inbox in order — the
/// loop thread never touches a session lock, and per-connection frame
/// ordering is preserved without a thread per connection.
class Daemon final : public bsk::net::EpollServer::Handler {
 public:
  using ConnId = bsk::net::EpollServer::ConnId;

  Daemon(double session_linger_s, std::size_t workers)
      : linger_(session_linger_s), pool_(workers) {}

  bool start(std::uint16_t port) {
    bsk::net::EpollOptions opts;
    opts.port = port;
    server_ = std::make_unique<bsk::net::EpollServer>(*this, opts);
    if (!server_->valid()) return false;
    g_server = server_.get();
    // Launch only after server_/g_server are published: the loop thread can
    // fire on_hello immediately, and handle_hello reads both.
    server_->start();
    return true;
  }

  std::uint16_t port() const { return server_->port(); }
  double linger() const { return linger_; }

  /// Orderly stop: say goodbye to live sessions (immediate failover on the
  /// client, no grace-window burn), then wind everything down.
  void shutdown() {
    using namespace bsk::net;
    for (auto& s : g_registry.snapshot()) {
      bsk::support::MutexLock lk(s->mu);
      if (s->conn != 0) {
        LeaveMsg bye;
        bye.self.port = 0;  // identity is the connection; port unused here
        server_->send(s->conn, make_leave(bye));
      }
      if (s->shm) s->shm->close();
    }
    server_->stop();  // no callbacks past this point
    pool_.stop();     // queued work drains; replies to dead conns no-op
    {
      bsk::support::MutexLock lk(shm_mu_);
      shm_threads_.clear();  // joins; g_stop and closed segments end them
    }
    g_registry.stop_all();
    g_server = nullptr;
  }

 private:
  struct Item {
    enum class Kind { Hello, Frame, Closed } kind = Kind::Frame;
    bsk::net::Hello hello;  // Kind::Hello
    bsk::net::Frame frame;  // Kind::Frame
  };

  struct ConnState {
    explicit ConnState(ConnId id_in) : id(id_in) {}
    const ConnId id;

    bsk::support::Mutex inbox_mu{"bskd.ConnState.inbox"};  // light: push/pop only, never held long
    std::deque<Item> inbox BSK_GUARDED_BY(inbox_mu);
    bool scheduled BSK_GUARDED_BY(inbox_mu) = false;

    // Pump-only state (one pump runs per connection at a time).
    int role = 0;  // 0 = pre-handshake, -1 = refused/done
    std::shared_ptr<Session> session;
    std::uint32_t epoch = 0;
  };

  // Loop-thread callbacks: enqueue and get out of the way.
  void on_hello(ConnId c, const bsk::net::Hello& h) override {
    auto cs = std::make_shared<ConnState>(c);
    {
      bsk::support::MutexLock lk(conns_mu_);
      conns_[c] = cs;
    }
    {
      bsk::support::MutexLock lk(cs->inbox_mu);
      cs->inbox.push_back(Item{Item::Kind::Hello, h, {}});
    }
    schedule(cs);
  }

  void on_frame(ConnId c, bsk::net::Frame&& f) override {
    auto cs = find(c);
    if (!cs) return;
    {
      bsk::support::MutexLock lk(cs->inbox_mu);
      cs->inbox.push_back(Item{Item::Kind::Frame, {}, std::move(f)});
    }
    schedule(cs);
  }

  void on_closed(ConnId c) override {
    std::shared_ptr<ConnState> cs;
    {
      bsk::support::MutexLock lk(conns_mu_);
      auto it = conns_.find(c);
      if (it == conns_.end()) return;
      cs = it->second;
      conns_.erase(it);
    }
    {
      bsk::support::MutexLock lk(cs->inbox_mu);
      cs->inbox.push_back(Item{Item::Kind::Closed, {}, {}});
    }
    schedule(cs);
  }

  std::shared_ptr<ConnState> find(ConnId c) {
    bsk::support::MutexLock lk(conns_mu_);
    auto it = conns_.find(c);
    return it == conns_.end() ? nullptr : it->second;
  }

  void schedule(const std::shared_ptr<ConnState>& cs) {
    bool spawn = false;
    {
      bsk::support::MutexLock lk(cs->inbox_mu);
      if (!cs->scheduled && !cs->inbox.empty()) {
        cs->scheduled = true;
        spawn = true;
      }
    }
    if (spawn)
      pool_.submit([this, cs] { pump(cs); });
  }

  void pump(const std::shared_ptr<ConnState>& cs) {
    for (;;) {
      Item it;
      {
        bsk::support::MutexLock lk(cs->inbox_mu);
        if (cs->inbox.empty()) {
          cs->scheduled = false;
          return;
        }
        it = std::move(cs->inbox.front());
        cs->inbox.pop_front();
      }
      process(*cs, it);
    }
  }

  void process(ConnState& cs, Item& it) {
    using namespace bsk::net;
    switch (it.kind) {
      case Item::Kind::Hello:
        handle_hello(cs, it.hello);
        return;
      case Item::Kind::Frame:
        switch (cs.role) {
          case 1:
            role1_frame(cs, it.frame);
            return;
          case 2:
            role2_frame(cs, it.frame);
            return;
          case 3:
            role3_frame(cs, it.frame);
            return;
          default:
            return;  // refused connection still draining
        }
      case Item::Kind::Closed:
        if (cs.role == 1 && cs.session) {
          if (g_stop.load()) {
            bsk::support::global_event_log().record(
                "bskd", "sessionEnd", static_cast<double>(cs.session->id));
            g_registry.erase(cs.session, cs.epoch);
          } else {
            // Connection died without a goodbye: park the session so a
            // client riding out a transient partition can resume it.
            bsk::support::global_event_log().record(
                "bskd", "sessionPark", static_cast<double>(cs.session->id));
            g_registry.park(cs.session, cs.epoch);
          }
          cs.session.reset();
        }
        cs.role = -1;
        return;
    }
  }

  // ---------------------------------------------------------- handshake

  void handle_hello(ConnState& cs, const bsk::net::Hello& hello) {
    using namespace bsk::net;
    if (hello.magic != kMagic || hello.version != kProtocolVersion) {
      HelloAck nak;
      nak.ok = false;
      server_->send(cs.id, make_hello_ack(nak));
      server_->close_conn(cs.id);
      cs.role = -1;
      return;
    }
    if (hello.clock_scale > 0.0)
      bsk::support::Clock::set_scale(hello.clock_scale);
    if (hello.role == 2) {
      cs.role = 2;
      HelloAck ack;  // no worker session behind a stats channel
      server_->send(cs.id, make_hello_ack(ack));
      return;
    }
    if (hello.role == 3) {
      cs.role = 3;
      HelloAck ack;  // gossip channel: refused when clustering is off
      ack.ok = g_cluster != nullptr;
      server_->send(cs.id, make_hello_ack(ack));
      if (!g_cluster) {
        server_->close_conn(cs.id);
        cs.role = -1;
      }
      return;
    }

    cs.role = 1;
    const double hb =
        hello.heartbeat_wall_s > 0.0 ? hello.heartbeat_wall_s : 0.25;

    std::shared_ptr<Session> session;
    std::uint32_t my_epoch = 0;
    bool resumed = false;
    if (hello.resume_session != 0) {
      if (auto s = g_registry.find_for_resume(hello.resume_session)) {
        bsk::support::MutexLock lk(s->mu);
        // The epoch fence + acked-result pruning is SessionCore's decision
        // (the model checker drives the same call); what follows is epoll
        // bookkeeping: steal the session from whatever connection held it
        // (a half-dead one during an asymmetric partition, or a parked
        // slot). Closing the old connection fires its Closed item, where
        // the epoch bump makes the park a no-op.
        if (s->core.try_resume(hello.resume_epoch, hello.last_acked_seq,
                               my_epoch)) {
          if (s->conn != 0) server_->close_conn(s->conn);
          if (s->shm) {
            s->shm->close();  // the new connection renegotiates below
            s->shm.reset();
          }
          s->conn = cs.id;
          s->parked_at = -1.0;
          session = s;
          resumed = true;
        }
      }
    }
    if (!session) {
      session = g_registry.create(hello.node_kind);
      bsk::support::MutexLock lk(session->mu);
      my_epoch = session->core.fresh_attach();
      session->conn = cs.id;
    }
    cs.session = session;
    cs.epoch = my_epoch;

    HelloAck ack;
    ack.session = session->id;
    ack.epoch = my_epoch;
    ack.resumed = resumed;

    // Colocated fast path: the client asked for shm, so create a named
    // segment and advertise it in the ack. Failure is silent — the ack
    // simply carries no name and the session stays on TCP, which is served
    // identically.
    std::shared_ptr<ShmTransport> shm;
    if (hello.want_shm != 0) {
      ShmOptions so;
      const std::size_t want =
          hello.shm_ring_bytes != 0 ? hello.shm_ring_bytes : (1u << 20);
      so.ring_bytes = std::clamp<std::size_t>(want, 64u << 10, 8u << 20);
      std::string name;
      shm = ShmTransport::create_named(name, so);
      if (shm) {
        ack.shm_name = name;
        ack.shm_ring_bytes = static_cast<std::uint32_t>(shm->ring_bytes());
        bsk::support::MutexLock lk(session->mu);
        session->shm = shm;
      }
    }

    server_->send(cs.id, make_hello_ack(ack));
    if (shm) serve_shm_async(session, shm, my_epoch, cs.id);
    bsk::support::global_event_log().record(
        "bskd", resumed ? "sessionResume" : "sessionStart",
        static_cast<double>(session->id), session->kind);
    server_->set_heartbeat(cs.id, hb);
  }

  // --------------------------------------------------------- role frames

  void role1_frame(ConnState& cs, const bsk::net::Frame& f) {
    using namespace bsk::net;
    switch (f.type) {
      case FrameType::TaskMsg:
        handle_task(*cs.session, f);
        return;
      case FrameType::SecureReq: {
        bsk::support::MutexLock lk(cs.session->mu);
        cs.session->secured = true;
        reply_to(*cs.session, Frame{FrameType::SecureAck, {}});
        return;
      }
      case FrameType::Shutdown:
        bsk::support::global_event_log().record(
            "bskd", "sessionEnd", static_cast<double>(cs.session->id));
        g_registry.erase(cs.session, cs.epoch);
        server_->close_conn(cs.id);
        cs.session.reset();
        cs.role = -1;
        return;
      default:
        return;  // not meaningful on a worker channel
    }
  }

  void role2_frame(ConnState& cs, const bsk::net::Frame& f) {
    using namespace bsk::net;
    if (f.type == FrameType::Shutdown) {
      server_->close_conn(cs.id);
      cs.role = -1;
      return;
    }
    if (f.type == FrameType::MembershipReq) {
      const auto seq = parse_membership_req(f);
      if (!seq) return;
      MembershipReply rep;
      rep.seq = *seq;
      if (g_cluster) {
        rep.ok = true;
        rep.view = g_cluster->view();
      }
      server_->send(cs.id, make_membership_rep(rep));
      return;
    }
    const auto req = parse_stats_req(f);
    if (!req) return;  // not meaningful on a stats channel
    StatsReply rep;
    rep.seq = req->seq;
    rep.ok = true;
    rep.text = stats_text(req->what);
    server_->send(cs.id, make_stats_rep(rep));
  }

  void role3_frame(ConnState& cs, const bsk::net::Frame& f) {
    std::optional<bsk::net::Frame> reply;
    const bool keep = g_cluster && g_cluster->handle_frame(f, reply);
    if (reply) server_->send(cs.id, *reply);
    if (!keep) {
      server_->close_conn(cs.id);
      cs.role = -1;
    }
  }

  // ----------------------------------------------------------- shm serve

  /// One blocking drain thread per negotiated segment: shm recv uses the
  /// spin→yield→futex ladder, so a dedicated thread is what keeps the
  /// colocated round-trip in the microsecond range (an epoll loop cannot
  /// wait on a futex in shared memory). Bounded by the number of colocated
  /// clients that negotiated shm, not by connection count.
  void serve_shm_async(std::shared_ptr<Session> s,
                       std::shared_ptr<bsk::net::ShmTransport> shm,
                       std::uint32_t my_epoch, ConnId conn) {
    bsk::support::MutexLock lk(shm_mu_);
    shm_threads_.emplace_back([this, s = std::move(s), shm = std::move(shm),
                               my_epoch, conn](const std::stop_token& st) {
      serve_shm(st, s, shm, my_epoch, conn);
    });
  }

  void serve_shm(const std::stop_token& st,
                 const std::shared_ptr<Session>& s,
                 const std::shared_ptr<bsk::net::ShmTransport>& shm,
                 std::uint32_t my_epoch, ConnId conn) {
    using namespace bsk::net;
    while (!g_stop.load() && !st.stop_requested() && !shm->closed()) {
      Frame f;
      switch (shm->recv_for(f, 0.25)) {
        case RecvStatus::Closed:
          return;  // anchor close parks the session via its Closed item
        case RecvStatus::TimedOut:
          continue;
        case RecvStatus::Ok:
          break;
      }
      switch (f.type) {
        case FrameType::TaskMsg:
          handle_task(*s, f);
          break;
        case FrameType::SecureReq: {
          bsk::support::MutexLock lk(s->mu);
          s->secured = true;
          reply_to(*s, Frame{FrameType::SecureAck, {}});
          break;
        }
        case FrameType::Shutdown:
          // Clean goodbye over the fast path: retire the session; closing
          // the anchor fires the conn's Closed item, fenced by the epoch.
          bsk::support::global_event_log().record(
              "bskd", "sessionEnd", static_cast<double>(s->id));
          g_registry.erase(s, my_epoch);
          server_->close_conn(conn);
          return;
        default:
          break;  // not meaningful on a worker channel
      }
    }
  }

  const double linger_;
  ExecutorPool pool_;
  std::unique_ptr<bsk::net::EpollServer> server_;

  mutable bsk::support::Mutex conns_mu_{"bskd.conns"};
  std::map<ConnId, std::shared_ptr<ConnState>> conns_
      BSK_GUARDED_BY(conns_mu_);

  bsk::support::Mutex shm_mu_{"bskd.shm"};
  std::vector<std::jthread> shm_threads_ BSK_GUARDED_BY(shm_mu_);
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--port-file PATH] [--session-linger S]"
               " [--workers N] [--trace-file PATH] [--cluster]"
               " [--join HOST:PORT[,HOST:PORT...]] [--cores N]"
               " [--core-speed X] [--fanout K] [--beacon PORT]"
               " [--gossip-period S] [--gossip-full]\n",
               argv0);
  return 2;
}

/// Raise RLIMIT_NOFILE to the hard cap. A fleet node holds one fd per
/// gossip peer plus worker/stats connections; the common soft default of
/// 1024 strangles a 128-daemon fleet long before memory does. Best-effort —
/// on failure the epoll accept backoff is the safety net.
void raise_nofile_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= rl.rlim_max) return;
  rl.rlim_cur = rl.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

/// Parse "host:port" (host defaults to loopback when omitted: ":7000").
std::optional<bsk::net::Endpoint> parse_endpoint(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  bsk::net::Endpoint ep;
  if (colon > 0) ep.host = s.substr(0, colon);
  const std::string port = s.substr(colon + 1);
  char* end = nullptr;
  const unsigned long v = std::strtoul(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || v == 0 || v > 65535)
    return std::nullopt;
  ep.port = static_cast<std::uint16_t>(v);
  return ep;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string port_file;
  std::string trace_file;
  double session_linger_s = 10.0;
  std::size_t workers = 64;
  bool cluster = false;
  bsk::cluster::ClusterOptions copts;
  std::uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  double core_speed = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cluster") {
      cluster = true;
    } else if (arg == "--join" && i + 1 < argc) {
      cluster = true;
      std::stringstream ss(argv[++i]);
      std::string one;
      while (std::getline(ss, one, ',')) {
        const auto ep = parse_endpoint(one);
        if (!ep) {
          std::fprintf(stderr, "bskd: invalid seed '%s'\n", one.c_str());
          return usage(argv[0]);
        }
        copts.seeds.push_back(*ep);
      }
    } else if (arg == "--cores" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bskd: invalid cores '%s'\n", s);
        return usage(argv[0]);
      }
      cores = static_cast<std::uint32_t>(v);
    } else if (arg == "--core-speed" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v <= 0.0) {
        std::fprintf(stderr, "bskd: invalid core speed '%s'\n", s);
        return usage(argv[0]);
      }
      core_speed = v;
    } else if (arg == "--fanout" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bskd: invalid fanout '%s'\n", s);
        return usage(argv[0]);
      }
      copts.fanout = static_cast<std::size_t>(v);
    } else if (arg == "--beacon" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0 || v > 65535) {
        std::fprintf(stderr, "bskd: invalid beacon port '%s'\n", s);
        return usage(argv[0]);
      }
      cluster = true;
      copts.beacon_port = static_cast<std::uint16_t>(v);
    } else if (arg == "--gossip-period" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v <= 0.0) {
        std::fprintf(stderr, "bskd: invalid gossip period '%s'\n", s);
        return usage(argv[0]);
      }
      copts.gossip_period_wall_s = v;
    } else if (arg == "--gossip-full") {
      // Full-table exchange on every dial (pre-delta behavior); used by the
      // E7c before/after comparison.
      copts.delta_gossip = false;
    } else if (arg == "--port" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v > 65535) {
        std::fprintf(stderr, "bskd: invalid port '%s'\n", s);
        return usage(argv[0]);
      }
      port = static_cast<std::uint16_t>(v);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--trace-file" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const unsigned long v = std::strtoul(s, &end, 10);
      if (end == s || *end != '\0' || v == 0) {
        std::fprintf(stderr, "bskd: invalid workers '%s'\n", s);
        return usage(argv[0]);
      }
      workers = static_cast<std::size_t>(v);
    } else if (arg == "--session-linger" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end == s || *end != '\0' || v < 0.0) {
        std::fprintf(stderr, "bskd: invalid linger '%s'\n", s);
        return usage(argv[0]);
      }
      session_linger_s = v;
    } else {
      return usage(argv[0]);
    }
  }

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  raise_nofile_limit();
  if (const std::size_t reaped = bsk::net::reap_stale_shm_segments();
      reaped > 0)
    std::fprintf(stderr, "bskd: reaped %zu stale shm segment(s)\n", reaped);

  Daemon daemon(session_linger_s, workers);
  if (!daemon.start(port)) {
    std::fprintf(stderr, "bskd: cannot listen on port %u\n", port);
    return 1;
  }
  std::fprintf(stderr, "bskd: listening on 127.0.0.1:%u\n", daemon.port());
  bsk::obs::TraceLog::global().set_process_tag(
      "bskd:" + std::to_string(daemon.port()));
  if (cluster) {
    bsk::net::Member self;
    self.host = "127.0.0.1";
    self.port = daemon.port();
    self.cores = cores;
    self.core_speed = core_speed;
    const std::size_t n_seeds = copts.seeds.size();
    g_cluster =
        std::make_unique<bsk::cluster::ClusterNode>(self, std::move(copts));
    g_cluster->start();
    std::fprintf(stderr, "bskd: cluster node %s (weight %.1f, %zu seeds)\n",
                 g_cluster->self_key().c_str(),
                 static_cast<double>(cores) * core_speed, n_seeds);
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << daemon.port() << '\n';
  }

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    g_registry.reap(daemon.linger());
  }
  daemon.shutdown();

  if (g_cluster) {
    // Orderly departure: tell every peer we are going (immediate
    // deregistration) instead of making them wait out suspicion.
    g_cluster->stop(/*broadcast_leave=*/true);
    g_cluster.reset();
  }

  if (!trace_file.empty()) {
    std::ofstream out(trace_file, std::ios::trunc);
    out << stats_text(bsk::net::StatsRequest::What::TraceJsonl);
  }
  return 0;
}
