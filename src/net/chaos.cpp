#include "net/chaos.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"

namespace bsk::net {

namespace {

// Injected faults by class, process-wide (per-injector figures stay in
// ChaosStats). Lets a metrics snapshot answer "what did chaos actually do
// during this run" without threading every injector's stats out.
struct ChaosObs {
  obs::Counter& dropped =
      obs::counter("bsk_chaos_dropped_total", "frames eaten by drop faults");
  obs::Counter& duplicated =
      obs::counter("bsk_chaos_duplicated_total", "frames sent/delivered twice");
  obs::Counter& reordered =
      obs::counter("bsk_chaos_reordered_total", "frames parked for reordering");
  obs::Counter& corrupted =
      obs::counter("bsk_chaos_corrupted_total", "frames with a byte flipped");
  obs::Counter& delayed =
      obs::counter("bsk_chaos_delayed_total", "frames held by delay faults");
  obs::Counter& kills =
      obs::counter("bsk_chaos_kills_total", "connections killed on schedule");
  obs::Counter& partition_blocked = obs::counter(
      "bsk_chaos_partition_blocked_total",
      "sends swallowed or receives stalled by an active partition");
};

ChaosObs& chaos_obs() {
  static ChaosObs o;
  return o;
}

/// splitmix64: the avalanche stage every per-frame decision hashes through.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0,1) from a hash value.
double unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

// Salts decorrelating the per-fault-kind draws from one frame hash.
constexpr std::uint64_t kSaltDrop = 0xD509;
constexpr std::uint64_t kSaltDup = 0xD0B1;
constexpr std::uint64_t kSaltReorder = 0x5EBA;
constexpr std::uint64_t kSaltCorrupt = 0xC0BB;
constexpr std::uint64_t kSaltDelay = 0xDE1A;
constexpr std::uint64_t kSaltJitter = 0x7177;
constexpr std::uint64_t kSaltOffset = 0x0FF5;
constexpr std::uint64_t kSaltMask = 0xA5C3;

void sleep_wall(double s) {
  if (s > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

// --------------------------------------------------------------- FaultPlan

std::uint64_t FaultPlan::stream_id(const std::string& name) {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

FaultDecision FaultPlan::decide(std::uint64_t stream,
                                std::uint64_t frame_idx) const {
  // Pure hash of (seed, stream, frame index): the schedule cannot depend on
  // call order, thread timing, or how many injectors share the plan.
  const std::uint64_t base = mix64(seed_ ^ mix64(stream) ^ mix64(frame_idx));
  FaultDecision d;
  if (spec_.drop > 0.0) d.drop = unit(mix64(base ^ kSaltDrop)) < spec_.drop;
  if (spec_.dup > 0.0) d.dup = unit(mix64(base ^ kSaltDup)) < spec_.dup;
  if (spec_.reorder > 0.0)
    d.reorder = unit(mix64(base ^ kSaltReorder)) < spec_.reorder;
  if (spec_.corrupt > 0.0)
    d.corrupt = unit(mix64(base ^ kSaltCorrupt)) < spec_.corrupt;
  if (spec_.delay_s > 0.0 || spec_.delay_jitter_s > 0.0) {
    if (spec_.delay_prob <= 0.0 ||
        unit(mix64(base ^ kSaltDelay)) < spec_.delay_prob)
      d.delay_s = spec_.delay_s +
                  unit(mix64(base ^ kSaltJitter)) * spec_.delay_jitter_s;
  }
  return d;
}

std::pair<std::uint64_t, std::uint8_t> FaultPlan::corruption(
    std::uint64_t stream, std::uint64_t frame_idx) const {
  const std::uint64_t base = mix64(seed_ ^ mix64(stream) ^ mix64(frame_idx));
  const std::uint64_t off = mix64(base ^ kSaltOffset);
  // Mask 1..255: the corrupted byte always actually changes.
  const std::uint8_t mask =
      static_cast<std::uint8_t>(1 + (mix64(base ^ kSaltMask) % 255));
  return {off, mask};
}

void FaultPlan::start() {
  double expected = -1.0;
  start_wall_.compare_exchange_strong(expected, wall_now());
}

double FaultPlan::elapsed() const {
  const double s = start_wall_.load(std::memory_order_relaxed);
  return s < 0.0 ? 0.0 : wall_now() - s;
}

std::optional<double> FaultPlan::partition_elapsed(bool outbound) const {
  if (spec_.partitions.empty()) return std::nullopt;
  const double t = elapsed();
  for (const auto& p : spec_.partitions) {
    if (!(outbound ? p.outbound : p.inbound)) continue;
    if (t >= p.at_s && t < p.at_s + p.duration_s) return t - p.at_s;
  }
  return std::nullopt;
}

bool FaultPlan::kill_due() const {
  return spec_.kill_at_s >= 0.0 && elapsed() >= spec_.kill_at_s;
}

// ----------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(std::shared_ptr<Transport> inner,
                             std::shared_ptr<FaultPlan> plan,
                             std::string stream)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      out_id_(FaultPlan::stream_id(stream + "/out")),
      in_id_(FaultPlan::stream_id(stream + "/in")) {
  plan_->start();
}

bool FaultInjector::kill_if_due() {
  if (!plan_->kill_due()) return killed_.load(std::memory_order_relaxed);
  if (!killed_.exchange(true)) {
    {
      support::MutexLock lk(stats_mu_);
      ++stats_.kills;
      chaos_obs().kills.inc();
    }
    inner_->close();
  }
  return true;
}

void FaultInjector::corrupt_frame(Frame& f, std::uint64_t stream,
                                  std::uint64_t idx) const {
  const auto [off, mask] = plan_->corruption(stream, idx);
  if (f.payload.empty())
    f.payload.push_back(mask);  // a parser expecting fields still fails
  else
    f.payload[off % f.payload.size()] ^= mask;
}

bool FaultInjector::send(const Frame& f) { return send_one(f); }

bool FaultInjector::send_many(const Frame* fs, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!send_one(fs[i])) return false;
  return true;
}

bool FaultInjector::send_one(const Frame& f) {
  if (kill_if_due()) return false;
  support::MutexLock lk(out_mu_);
  const std::uint64_t idx = out_idx_++;
  const FaultDecision d = plan_->decide(out_id_, idx);
  {
    support::MutexLock slk(stats_mu_);
    ++stats_.frames_seen;
  }

  // An outbound partition is the network eating the frame: the sender sees
  // a successful send, the bytes never arrive.
  if (plan_->partition_elapsed(/*outbound=*/true)) {
    support::MutexLock slk(stats_mu_);
    ++stats_.blocked_outbound;
    chaos_obs().partition_blocked.inc();
    return true;
  }
  if (d.drop) {
    support::MutexLock slk(stats_mu_);
    ++stats_.dropped;
    chaos_obs().dropped.inc();
    return true;
  }

  Frame out = f;
  if (d.corrupt) {
    corrupt_frame(out, out_id_, idx);
    support::MutexLock slk(stats_mu_);
    ++stats_.corrupted;
    chaos_obs().corrupted.inc();
  }
  if (d.delay_s > 0.0) {
    {
      support::MutexLock slk(stats_mu_);
      ++stats_.delayed;
      chaos_obs().delayed.inc();
    }
    sleep_wall(d.delay_s);
  }

  // Reorder: park this frame; it leaves right after its successor.
  if (d.reorder && !held_) {
    held_ = std::move(out);
    support::MutexLock slk(stats_mu_);
    ++stats_.reordered;
    chaos_obs().reordered.inc();
    return true;
  }

  bool ok = inner_->send(out);
  if (ok && d.dup) {
    {
      support::MutexLock slk(stats_mu_);
      ++stats_.duplicated;
      chaos_obs().duplicated.inc();
    }
    ok = inner_->send(out);
  }
  if (held_) {
    const Frame parked = std::move(*held_);
    held_.reset();
    if (ok) ok = inner_->send(parked);
  }
  return ok;
}

RecvStatus FaultInjector::recv(Frame& out) {
  for (;;) {
    const RecvStatus r = recv_for(out, 0.25);
    if (r != RecvStatus::TimedOut) return r;
    if (closed()) return RecvStatus::Closed;
  }
}

RecvStatus FaultInjector::recv_for(Frame& out, double wall_seconds) {
  const double deadline = wall_now() + wall_seconds;
  for (;;) {
    if (kill_if_due()) return RecvStatus::Closed;

    {
      support::MutexLock lk(in_mu_);
      if (dup_in_) {
        out = std::move(*dup_in_);
        dup_in_.reset();
        return RecvStatus::Ok;
      }
    }

    // An inbound partition stalls delivery: frames queue up behind the hole
    // and arrive in a burst once it heals (idle_seconds() meanwhile reports
    // the silence so liveness detection can fire).
    if (plan_->partition_elapsed(/*outbound=*/false)) {
      {
        support::MutexLock slk(stats_mu_);
        ++stats_.stalled_inbound;
        chaos_obs().partition_blocked.inc();
      }
      if (wall_now() >= deadline) return RecvStatus::TimedOut;
      sleep_wall(0.01);
      continue;
    }

    const double remain = deadline - wall_now();
    if (remain <= 0.0) return RecvStatus::TimedOut;
    Frame f;
    const RecvStatus r = inner_->recv_for(f, std::min(remain, 0.05));
    if (r == RecvStatus::Closed) return RecvStatus::Closed;
    if (r == RecvStatus::TimedOut) continue;

    std::uint64_t idx;
    {
      support::MutexLock lk(in_mu_);
      idx = in_idx_++;
    }
    const FaultDecision d = plan_->decide(in_id_, idx);
    {
      support::MutexLock slk(stats_mu_);
      ++stats_.frames_seen;
    }
    if (d.drop) {
      support::MutexLock slk(stats_mu_);
      ++stats_.dropped;
      chaos_obs().dropped.inc();
      continue;
    }
    if (d.corrupt) {
      corrupt_frame(f, in_id_, idx);
      support::MutexLock slk(stats_mu_);
      ++stats_.corrupted;
      chaos_obs().corrupted.inc();
    }
    if (d.delay_s > 0.0) {
      {
        support::MutexLock slk(stats_mu_);
        ++stats_.delayed;
        chaos_obs().delayed.inc();
      }
      sleep_wall(d.delay_s);
    }
    if (d.dup) {
      support::MutexLock lk(in_mu_);
      dup_in_ = f;
      support::MutexLock slk(stats_mu_);
      ++stats_.duplicated;
      chaos_obs().duplicated.inc();
    }
    out = std::move(f);
    return RecvStatus::Ok;
  }
}

void FaultInjector::close() { inner_->close(); }

bool FaultInjector::closed() const {
  return killed_.load(std::memory_order_relaxed) || inner_->closed();
}

double FaultInjector::idle_seconds() const {
  // Heartbeats are absorbed inside the wrapped transport, so a frame-level
  // partition cannot silence them there — report the partition's own age as
  // the observed silence instead.
  if (auto p = plan_->partition_elapsed(/*outbound=*/false)) return *p;
  return inner_->idle_seconds();
}

ChaosStats FaultInjector::chaos_stats() const {
  support::MutexLock lk(stats_mu_);
  return stats_;
}

}  // namespace bsk::net
