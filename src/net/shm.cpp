#include "net/shm.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <linux/futex.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace bsk::net {

namespace {

struct ShmObs {
  obs::Counter& frames_sent = obs::counter("bsk_net_shm_frames_sent_total",
                                           "frames written to shm rings");
  obs::Counter& frames_received = obs::counter(
      "bsk_net_shm_frames_received_total", "non-heartbeat frames read");
  obs::Counter& bytes_sent =
      obs::counter("bsk_net_shm_bytes_sent_total", "bytes written to rings");
  obs::Counter& bytes_received =
      obs::counter("bsk_net_shm_bytes_received_total", "bytes read from rings");
  obs::Counter& futex_waits = obs::counter(
      "bsk_net_shm_futex_waits_total",
      "ring waits that exhausted the spin/yield rungs and slept");
  obs::Counter& full_stalls = obs::counter(
      "bsk_net_shm_ring_full_stalls_total", "sends that waited for ring space");
  obs::Counter& segments =
      obs::counter("bsk_net_shm_segments_total", "shm segments created");
  obs::Counter& crc_errors = obs::counter(
      "bsk_net_crc_errors_total", "frames dropped for checksum mismatch");
  obs::Counter& decode_errors = obs::counter(
      "bsk_net_decode_errors_total",
      "connections killed by an unrecoverable framing error");
};

ShmObs& shm_obs() {
  static ShmObs o;
  return o;
}

constexpr std::uint32_t kShmMagic = 0x42534b4d;  // "BSKM"
constexpr std::uint32_t kShmVersion = 1;

// Non-private futex ops: the sequence words live in a MAP_SHARED segment
// and must wake waiters in the peer process.
long sys_futex(std::atomic<std::uint32_t>* uaddr, int op, std::uint32_t val,
               const timespec* timeout) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(uaddr), op, val,
                   timeout, nullptr, 0);
}

void futex_wait_for(std::atomic<std::uint32_t>* uaddr, std::uint32_t expected,
                    long timeout_ns) {
  timespec ts{0, timeout_ns};
  sys_futex(uaddr, FUTEX_WAIT, expected, &ts);
}

void futex_wake_all(std::atomic<std::uint32_t>* uaddr) {
  sys_futex(uaddr, FUTEX_WAKE, INT_MAX, nullptr);
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 4096;
  while (p < v) p <<= 1;
  return p;
}

// Futex sleep bound: short enough that a missed wake or a peer that died
// without closing is noticed promptly via the closed-bit recheck.
constexpr long kFutexSliceNs = 50'000'000;  // 50 ms

}  // namespace

namespace shm_detail {

// Per-direction ring control. head counts bytes ever produced, tail bytes
// ever consumed (both monotonically increasing; ring index = offset &
// (ring_bytes-1)). data_seq/space_seq are the futex words bumped on every
// publish/consume; the waiter counters let the fast path skip the wake
// syscall when nobody sleeps. Producer and consumer cachelines are kept
// apart.
struct alignas(64) RingCtl {
  std::atomic<std::uint64_t> head;
  std::atomic<std::uint32_t> data_seq;
  std::atomic<std::uint32_t> data_waiters;
  char pad0[48];
  std::atomic<std::uint64_t> tail;
  std::atomic<std::uint32_t> space_seq;
  std::atomic<std::uint32_t> space_waiters;
  char pad1[48];
};
static_assert(sizeof(RingCtl) == 128);

struct SegmentHdr {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t ring_bytes;  ///< per direction, power of two
  /// bit 0: creator closed, bit 1: attacher closed.
  std::atomic<std::uint32_t> closed;
  std::atomic<std::uint32_t> attached;
  char pad[40];
  RingCtl ring[2];  ///< [0] creator→attacher, [1] attacher→creator
};
static_assert(sizeof(SegmentHdr) == 64 + 2 * sizeof(RingCtl));
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

Mapping::~Mapping() {
  if (mem != nullptr) ::munmap(mem, len);
  if (unlink_on_close && !name.empty()) ::shm_unlink(name.c_str());
}

}  // namespace shm_detail

using shm_detail::Mapping;
using shm_detail::RingCtl;
using shm_detail::SegmentHdr;

// ------------------------------------------------------------ construction

ShmTransport::ShmTransport(std::shared_ptr<Mapping> map, bool creator,
                           std::shared_ptr<Transport> anchor, ShmOptions opts)
    : map_(std::move(map)),
      creator_(creator),
      opts_(opts),
      anchor_(std::move(anchor)) {
  last_rx_wall_.store(wall_now(), std::memory_order_relaxed);
}

ShmTransport::~ShmTransport() { close(); }

SegmentHdr* ShmTransport::hdr() const {
  return static_cast<SegmentHdr*>(map_->mem);
}

RingCtl& ShmTransport::tx_ctl() const { return hdr()->ring[creator_ ? 0 : 1]; }
RingCtl& ShmTransport::rx_ctl() const { return hdr()->ring[creator_ ? 1 : 0]; }

std::uint8_t* ShmTransport::tx_data() const {
  auto* base = static_cast<std::uint8_t*>(map_->mem) + sizeof(SegmentHdr);
  return base + (creator_ ? 0 : hdr()->ring_bytes);
}

std::uint8_t* ShmTransport::rx_data() const {
  auto* base = static_cast<std::uint8_t*>(map_->mem) + sizeof(SegmentHdr);
  return base + (creator_ ? hdr()->ring_bytes : 0);
}

std::size_t ShmTransport::ring_bytes() const { return hdr()->ring_bytes; }

bool ShmTransport::peer_attached() const {
  return hdr()->attached.load(std::memory_order_acquire) != 0;
}

namespace {

std::shared_ptr<Mapping> init_segment(void* mem, std::size_t total,
                                      std::size_t ring_bytes) {
  auto* h = new (mem) SegmentHdr{};
  h->magic = kShmMagic;
  h->version = kShmVersion;
  h->ring_bytes = ring_bytes;
  auto m = std::make_shared<Mapping>();
  m->mem = mem;
  m->len = total;
  shm_obs().segments.inc();
  return m;
}

}  // namespace

ShmTransport::Pair ShmTransport::make_pair(ShmOptions opts) {
  opts.ring_bytes = round_pow2(opts.ring_bytes);
  const std::size_t total = sizeof(SegmentHdr) + 2 * opts.ring_bytes;
  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return {};
  auto m = init_segment(mem, total, opts.ring_bytes);
  Pair p;
  p.a.reset(new ShmTransport(m, /*creator=*/true, nullptr, opts));
  p.b.reset(new ShmTransport(m, /*creator=*/false, nullptr, opts));
  return p;
}

std::shared_ptr<ShmTransport> ShmTransport::create_named(std::string& name_out,
                                                         ShmOptions opts) {
  opts.ring_bytes = round_pow2(opts.ring_bytes);
  const std::size_t total = sizeof(SegmentHdr) + 2 * opts.ring_bytes;

  // Name layout: /bsk.shm.<pid>.<epoch>.<counter>. The per-process epoch
  // stamp (wall microseconds at first use) makes the name unique even when
  // the kernel recycles a dead owner's pid before its leak is reaped, and
  // the embedded pid is what reap_stale_shm_segments() probes for life.
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t epoch = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  char name[96];
  std::snprintf(name, sizeof name, "/bsk.shm.%d.%llu.%llu",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));

  const int fd = ::shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    ::close(fd);
    ::shm_unlink(name);
    return nullptr;
  }
  void* mem =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    ::shm_unlink(name);
    return nullptr;
  }
  auto m = init_segment(mem, total, opts.ring_bytes);
  m->name = name;
  m->unlink_on_close = true;  // covers a client that never attaches
  name_out = name;
  return std::shared_ptr<ShmTransport>(
      new ShmTransport(std::move(m), /*creator=*/true, nullptr, opts));
}

std::shared_ptr<ShmTransport> ShmTransport::attach_named(
    const std::string& name, std::shared_ptr<Transport> anchor,
    ShmOptions opts) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(sizeof(SegmentHdr))) {
    ::close(fd);
    return nullptr;
  }
  const std::size_t total = static_cast<std::size_t>(st.st_size);
  void* mem =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) return nullptr;

  auto* h = static_cast<SegmentHdr*>(mem);
  if (h->magic != kShmMagic || h->version != kShmVersion ||
      h->ring_bytes == 0 || (h->ring_bytes & (h->ring_bytes - 1)) != 0 ||
      total != sizeof(SegmentHdr) + 2 * h->ring_bytes) {
    ::munmap(mem, total);
    return nullptr;
  }
  h->attached.store(1, std::memory_order_release);
  // One-shot rendezvous: with both ends mapped the name is no longer
  // needed; unlinking now means a crash on either side cannot leak it.
  ::shm_unlink(name.c_str());

  auto m = std::make_shared<Mapping>();
  m->mem = mem;
  m->len = total;
  opts.ring_bytes = h->ring_bytes;
  return std::shared_ptr<ShmTransport>(
      new ShmTransport(std::move(m), /*creator=*/false, std::move(anchor),
                       opts));
}

// ----------------------------------------------------------------- closing

void ShmTransport::close() {
  auto* h = hdr();
  const std::uint32_t bit = creator_ ? 1u : 2u;
  if ((h->closed.fetch_or(bit, std::memory_order_acq_rel) & bit) == 0) {
    // Wake every waiter on both rings so blocked peers re-check the flag.
    for (RingCtl& c : h->ring) {
      c.data_seq.fetch_add(1, std::memory_order_release);
      c.space_seq.fetch_add(1, std::memory_order_release);
      futex_wake_all(&c.data_seq);
      futex_wake_all(&c.space_seq);
    }
  }
  if (anchor_) anchor_->close();
}

bool ShmTransport::closed() const {
  if (hdr()->closed.load(std::memory_order_acquire) != 0) return true;
  return anchor_ && anchor_->closed();
}

void ShmTransport::fail_decode(DecodeError e) {
  decode_error_.store(e, std::memory_order_relaxed);
  if (e == DecodeError::BadCrc) shm_obs().crc_errors.inc();
  shm_obs().decode_errors.inc();
  close();
}

// ----------------------------------------------------------------- sending

// Block until the producer ring has `need` free bytes (need ≤ cap). Returns
// false if the transport closed while waiting. Spin/yield rungs are skipped
// here: a full ring means the consumer is behind by a whole ring's worth,
// so the wait is macroscopic and the futex is the right tool.
bool ShmTransport::wait_space_locked(std::uint64_t need) {
  RingCtl& c = tx_ctl();
  const std::uint64_t cap = hdr()->ring_bytes;
  const auto space = [&] {
    return cap - (c.head.load(std::memory_order_relaxed) -
                  c.tail.load(std::memory_order_acquire));
  };
  if (space() >= need) return true;
  shm_obs().full_stalls.inc();
  for (unsigned i = 0; i < opts_.yields; ++i) {
    if (space() >= need) return true;
    if (closed()) return false;
    std::this_thread::yield();
  }
  for (;;) {
    const std::uint32_t seq = c.space_seq.load(std::memory_order_acquire);
    if (space() >= need) return true;
    if (closed()) return false;
    c.space_waiters.fetch_add(1, std::memory_order_acq_rel);
    if (space() < need) {
      shm_obs().futex_waits.inc();
      futex_wait_for(&c.space_seq, seq, kFutexSliceNs);
    }
    c.space_waiters.fetch_sub(1, std::memory_order_acq_rel);
  }
}

// Copy `n` bytes into the producer ring at absolute offset `at` (no
// publication — the caller stores head afterwards).
void ShmTransport::copy_in(std::uint64_t at, const std::uint8_t* p,
                           std::size_t n) {
  if (n == 0) return;
  const std::uint64_t cap = hdr()->ring_bytes;
  std::uint8_t* data = tx_data();
  const std::uint64_t idx = at & (cap - 1);
  const std::size_t first =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, cap - idx));
  std::memcpy(data + idx, p, first);
  if (n > first) std::memcpy(data, p + first, n - first);
}

// Publish `n` freshly written bytes and wake a parked consumer if any.
void ShmTransport::publish(std::uint64_t n) {
  RingCtl& c = tx_ctl();
  const std::uint64_t head = c.head.load(std::memory_order_relaxed);
  c.head.store(head + n, std::memory_order_release);
  c.data_seq.fetch_add(1, std::memory_order_release);
  if (c.data_waiters.load(std::memory_order_acquire) != 0)
    futex_wake_all(&c.data_seq);
}

bool ShmTransport::ring_write(const std::uint8_t* p, std::size_t n) {
  // Streaming writer for frames larger than the ring: publish progressively
  // so the consumer drains behind us.
  RingCtl& c = tx_ctl();
  const std::uint64_t cap = hdr()->ring_bytes;
  while (n > 0) {
    if (!wait_space_locked(1)) return false;
    const std::uint64_t head = c.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = c.tail.load(std::memory_order_acquire);
    const std::uint64_t space = cap - (head - tail);
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, space));
    copy_in(head, p, chunk);
    publish(chunk);
    p += chunk;
    n -= chunk;
  }
  return true;
}

namespace {

// Encoded frame header+type: [u32 len][u32 crc][u8 type].
void put_frame_hdr(std::uint8_t* h9, std::uint32_t len, std::uint32_t crc,
                   std::uint8_t type) {
  for (int i = 0; i < 4; ++i) {
    h9[i] = static_cast<std::uint8_t>(len >> (8 * i));
    h9[4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  h9[8] = type;
}

}  // namespace

bool ShmTransport::send(const Frame& f) { return send_many(&f, 1); }

bool ShmTransport::send_many(const Frame* fs, std::size_t n) {
  if (n == 0) return !closed();
  if (closed()) return false;
  support::MutexLock lk(send_mu_);
  const std::uint64_t cap = hdr()->ring_bytes;
  RingCtl& c = tx_ctl();
  std::uint64_t sent_bytes = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const Frame& f = fs[i];
    const std::uint32_t len = static_cast<std::uint32_t>(f.payload.size() + 1);
    const std::uint8_t type = static_cast<std::uint8_t>(f.type);
    std::uint32_t crc = crc32(&type, 1);
    crc = crc32(f.payload.data(), f.payload.size(), crc);
    std::uint8_t h9[9];
    put_frame_hdr(h9, len, crc, type);
    const std::uint64_t total = 8u + len;

    if (total <= cap) {
      // Whole-frame publication: wait until the frame fits, copy header and
      // payload, then publish head once — the consumer never sees a torn
      // frame, which is what lets recv_for time out only at frame
      // boundaries.
      if (!wait_space_locked(total)) return false;
      const std::uint64_t head = c.head.load(std::memory_order_relaxed);
      copy_in(head, h9, 9);
      copy_in(head + 9, f.payload.data(), f.payload.size());
      publish(total);
    } else {
      // Frame larger than the ring: stream it through with progressive
      // publication; the consumer drains chunk by chunk behind us.
      if (!ring_write(h9, 9) ||
          !ring_write(f.payload.data(), f.payload.size()))
        return false;
    }
    sent_bytes += total;
  }

  frames_sent_.fetch_add(n, std::memory_order_relaxed);
  bytes_sent_.fetch_add(sent_bytes, std::memory_order_relaxed);
  shm_obs().frames_sent.inc(n);
  shm_obs().bytes_sent.inc(sent_bytes);
  return true;
}

bool ShmTransport::send_serialized(FrameType type, std::size_t n,
                                   const SerializeFn& emit) {
  if (n == 0) return !closed();
  if (closed()) return false;
  // Zero-copy-ish: each frame is serialized once into a reusable
  // thread-local scratch (alloc-free after warmup) whose exact wire bytes
  // are then ring-copied — no Frame, no per-frame vector.
  thread_local std::vector<std::uint8_t> scratch;
  const std::uint64_t cap = hdr()->ring_bytes;
  RingCtl& c = tx_ctl();
  std::size_t sent = 0;
  std::uint64_t sent_bytes = 0;
  bool ok = true;
  {
    support::MutexLock lk(send_mu_);
    for (std::size_t i = 0; i < n && ok; ++i) {
      scratch.clear();
      build_frame_into(scratch, type, [&](wire::Writer& w) { emit(i, w); });
      const std::uint64_t total = scratch.size();
      if (total <= cap) {
        if (!wait_space_locked(total)) {
          ok = false;
          break;
        }
        copy_in(c.head.load(std::memory_order_relaxed), scratch.data(),
                scratch.size());
        publish(total);
      } else {
        ok = ring_write(scratch.data(), scratch.size());
      }
      if (ok) {
        ++sent;
        sent_bytes += total;
      }
    }
  }
  frames_sent_.fetch_add(sent, std::memory_order_relaxed);
  bytes_sent_.fetch_add(sent_bytes, std::memory_order_relaxed);
  shm_obs().frames_sent.inc(sent);
  shm_obs().bytes_sent.inc(sent_bytes);
  return ok;
}

// --------------------------------------------------------------- receiving

void ShmTransport::read_span(std::uint64_t from, std::uint8_t* dst,
                             std::size_t n) const {
  if (n == 0) return;
  const std::uint64_t cap = hdr()->ring_bytes;
  const std::uint8_t* data = rx_data();
  const std::uint64_t idx = from & (cap - 1);
  const std::size_t first =
      static_cast<std::size_t>(std::min<std::uint64_t>(n, cap - idx));
  std::memcpy(dst, data + idx, first);
  if (n > first) std::memcpy(dst + first, data, n - first);
}

void ShmTransport::consume(std::size_t n) {
  RingCtl& c = rx_ctl();
  const std::uint64_t tail = c.tail.load(std::memory_order_relaxed);
  c.tail.store(tail + n, std::memory_order_release);
  c.space_seq.fetch_add(1, std::memory_order_release);
  if (c.space_waiters.load(std::memory_order_acquire) != 0)
    futex_wake_all(&c.space_seq);
}

bool ShmTransport::wait_readable(std::size_t need, bool bounded,
                                 double deadline, Frame* control_out,
                                 RecvStatus* control_status) {
  RingCtl& c = rx_ctl();
  const auto avail = [&] {
    return c.head.load(std::memory_order_acquire) -
           c.tail.load(std::memory_order_relaxed);
  };

  // Rung 1: busy spin — the peer is typically mid-write on another core.
  for (unsigned i = 0; i < opts_.spin; ++i) {
    if (avail() >= need) return true;
    cpu_relax();
  }

  // Rung 2: sched_yield — on machines with fewer cores than busy threads
  // (including the 1-CPU case) this hands the core to the peer and is the
  // rung that carries microsecond round-trips.
  for (unsigned i = 0; i < opts_.yields; ++i) {
    if (avail() >= need) return true;
    if (closed() && avail() < need) {
      *control_status = RecvStatus::Closed;
      return false;
    }
    if (bounded && wall_now() >= deadline) {
      *control_status = RecvStatus::TimedOut;
      return false;
    }
    std::this_thread::yield();
  }

  // Rung 3: futex sleep, rechecking the closed bit and the anchor each
  // bounded slice. Control frames arriving on the TCP anchor (Leave at
  // daemon shutdown, Shutdown) are surfaced from here — by the time they
  // matter the rings are idle.
  for (;;) {
    const std::uint32_t seq = c.data_seq.load(std::memory_order_acquire);
    if (avail() >= need) return true;
    if (closed() && avail() < need) {
      *control_status = RecvStatus::Closed;
      return false;
    }
    if (bounded && wall_now() >= deadline) {
      *control_status = RecvStatus::TimedOut;
      return false;
    }
    if (anchor_ != nullptr && control_out != nullptr) {
      Frame f;
      if (anchor_->recv_for(f, 0.0) == RecvStatus::Ok) {
        *control_out = std::move(f);
        *control_status = RecvStatus::Ok;
        return false;
      }
    }
    c.data_waiters.fetch_add(1, std::memory_order_acq_rel);
    if (avail() < need) {
      shm_obs().futex_waits.inc();
      futex_wait_for(&c.data_seq, seq, kFutexSliceNs);
    }
    c.data_waiters.fetch_sub(1, std::memory_order_acq_rel);
  }
}

RecvStatus ShmTransport::recv_until(Frame& out, bool bounded,
                                    double wall_seconds) {
  const double deadline = bounded ? wall_now() + wall_seconds : 0.0;
  RingCtl& c = rx_ctl();
  const std::uint64_t cap = hdr()->ring_bytes;

  for (;;) {  // loop absorbs heartbeats
    RecvStatus st = RecvStatus::Closed;
    Frame control;
    if (!wait_readable(8, bounded, deadline, &control, &st)) {
      if (st == RecvStatus::Ok) {  // control frame from the anchor
        out = std::move(control);
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        return RecvStatus::Ok;
      }
      return st;
    }

    const std::uint64_t tail = c.tail.load(std::memory_order_relaxed);
    std::uint8_t h8[8];
    read_span(tail, h8, 8);
    std::uint32_t len = 0, want_crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(h8[i]) << (8 * i);
      want_crc |= static_cast<std::uint32_t>(h8[4 + i]) << (8 * i);
    }
    if (len == 0) {
      fail_decode(DecodeError::ZeroLength);
      return RecvStatus::Closed;
    }
    if (len > opts_.max_frame) {
      fail_decode(DecodeError::Oversize);
      return RecvStatus::Closed;
    }

    std::uint8_t type = 0;
    std::uint32_t crc = 0;
    const std::uint64_t total = 8u + static_cast<std::uint64_t>(len);

    if (total <= cap) {
      // Small frame: the producer published it whole, so completing the
      // read never blocks past a published header.
      if (!wait_readable(static_cast<std::size_t>(total), bounded, deadline,
                         &control, &st)) {
        if (st == RecvStatus::Ok) {  // header stays unconsumed in the ring
          out = std::move(control);
          frames_received_.fetch_add(1, std::memory_order_relaxed);
          return RecvStatus::Ok;
        }
        return st;
      }
      read_span(tail + 8, &type, 1);
      out.payload.resize(len - 1);
      read_span(tail + 9, out.payload.data(), len - 1);
      consume(static_cast<std::size_t>(total));
      crc = crc32(&type, 1);
      crc = crc32(out.payload.data(), out.payload.size(), crc);
    } else {
      // Giant frame (larger than the ring): stream it, consuming and
      // re-publishing tail progressively so the producer can keep writing.
      consume(8);
      if (!wait_readable(1, false, 0.0, nullptr, &st)) return st;
      read_span(c.tail.load(std::memory_order_relaxed), &type, 1);
      consume(1);
      crc = crc32(&type, 1);
      out.payload.resize(len - 1);
      std::size_t got = 0;
      while (got < out.payload.size()) {
        if (!wait_readable(1, false, 0.0, nullptr, &st)) return st;
        const std::uint64_t t2 = c.tail.load(std::memory_order_relaxed);
        const std::uint64_t a =
            c.head.load(std::memory_order_acquire) - t2;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(a, out.payload.size() - got));
        read_span(t2, out.payload.data() + got, chunk);
        consume(chunk);
        crc = crc32(out.payload.data() + got, chunk, crc);
        got += chunk;
      }
    }

    if (crc != want_crc) {
      fail_decode(DecodeError::BadCrc);
      return RecvStatus::Closed;
    }

    bytes_received_.fetch_add(total, std::memory_order_relaxed);
    shm_obs().bytes_received.inc(total);
    last_rx_wall_.store(wall_now(), std::memory_order_relaxed);
    if (static_cast<FrameType>(type) == FrameType::Heartbeat) {
      heartbeats_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.type = static_cast<FrameType>(type);
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    shm_obs().frames_received.inc();
    return RecvStatus::Ok;
  }
}

RecvStatus ShmTransport::recv(Frame& out) {
  return recv_until(out, /*bounded=*/false, 0.0);
}

RecvStatus ShmTransport::recv_for(Frame& out, double wall_seconds) {
  return recv_until(out, /*bounded=*/true, wall_seconds);
}

double ShmTransport::idle_seconds() const {
  // Peer progress is visible in the ring head even when no recv() runs, so
  // unconsumed traffic still counts as liveness; with a TCP anchor (whose
  // I/O thread absorbs heartbeats continuously) defer to the fresher of
  // the two.
  const std::uint64_t head = rx_ctl().head.load(std::memory_order_acquire);
  if (head != last_rx_head_.load(std::memory_order_relaxed)) {
    last_rx_head_.store(head, std::memory_order_relaxed);
    last_rx_wall_.store(wall_now(), std::memory_order_relaxed);
  }
  const double mine =
      wall_now() - last_rx_wall_.load(std::memory_order_relaxed);
  if (anchor_) return std::min(mine, anchor_->idle_seconds());
  return mine;
}

TransportStats ShmTransport::stats() const {
  TransportStats s;
  s.frames_sent = frames_sent_.load();
  s.frames_received = frames_received_.load();
  s.bytes_sent = bytes_sent_.load();
  s.bytes_received = bytes_received_.load();
  s.heartbeats_seen = heartbeats_.load();
  return s;
}

// ----------------------------------------------------------------- reaping

std::size_t reap_stale_shm_segments() {
  DIR* d = ::opendir("/dev/shm");
  if (d == nullptr) return 0;
  std::size_t reaped = 0;
  const pid_t self = ::getpid();
  while (dirent* e = ::readdir(d)) {
    const char* n = e->d_name;
    // Current "bsk.shm.<pid>..." layout plus the pre-reaper
    // "bsk-shm-<pid>-..." one, both with the owner pid right after the
    // prefix.
    long pid = 0;
    if (std::strncmp(n, "bsk.shm.", 8) == 0 ||
        std::strncmp(n, "bsk-shm-", 8) == 0)
      pid = std::strtol(n + 8, nullptr, 10);
    else
      continue;
    if (pid <= 0 || static_cast<pid_t>(pid) == self) continue;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH)
      continue;  // owner alive (or not ours to probe): leave it be
    std::string path = "/";
    path += n;
    if (::shm_unlink(path.c_str()) == 0) ++reaped;
  }
  ::closedir(d);
  return reaped;
}

}  // namespace bsk::net
