#include "net/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.hpp"
#include "support/clock.hpp"

namespace bsk::net {

namespace {

// Process-wide dataplane counters, aggregated across every live transport
// (per-connection figures stay in TransportStats).
struct NetObs {
  obs::Counter& frames_sent =
      obs::counter("bsk_net_frames_sent_total", "frames written to the wire");
  obs::Counter& frames_received = obs::counter(
      "bsk_net_frames_received_total", "non-heartbeat frames decoded");
  obs::Counter& bytes_sent =
      obs::counter("bsk_net_bytes_sent_total", "payload bytes written (TCP)");
  obs::Counter& bytes_received = obs::counter(
      "bsk_net_bytes_received_total", "payload bytes read (TCP)");
  obs::Counter& crc_errors = obs::counter(
      "bsk_net_crc_errors_total", "frames dropped for checksum mismatch");
  obs::Counter& decode_errors = obs::counter(
      "bsk_net_decode_errors_total",
      "connections killed by an unrecoverable framing error");
};

NetObs& net_obs() {
  static NetObs o;
  return o;
}

}  // namespace

double wall_now() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// --------------------------------------------------------------- sendqueue

std::vector<std::uint8_t>& SendQueue::back_slab() {
  if (slabs_.empty() || slabs_.back().data.size() >= kSlabBytes) {
    Slab s;
    if (!spares_.empty()) {
      s.data = std::move(spares_.back());
      spares_.pop_back();
      s.data.clear();
    } else {
      s.data.reserve(kSlabBytes);
    }
    slabs_.push_back(std::move(s));
  }
  return slabs_.back().data;
}

void SendQueue::append_frame(const Frame& f) {
  auto& slab = back_slab();
  const std::size_t before = slab.size();
  encode_frame_into(f, slab);
  bytes_ += slab.size() - before;
}

void SendQueue::take_all(SendQueue& from) {
  while (!from.slabs_.empty()) {
    slabs_.push_back(std::move(from.slabs_.front()));
    from.slabs_.pop_front();
  }
  bytes_ += from.bytes_;
  from.bytes_ = 0;
}

void SendQueue::give_spares(SendQueue& to) {
  while (!spares_.empty() && to.spares_.size() < kMaxSpares) {
    to.spares_.push_back(std::move(spares_.back()));
    spares_.pop_back();
  }
  spares_.clear();
}

std::size_t SendQueue::gather(iovec* iov, std::size_t max) const {
  std::size_t n = 0;
  for (const Slab& s : slabs_) {
    if (n == max) break;
    const std::size_t len = s.data.size() - s.off;
    if (len == 0) continue;
    iov[n].iov_base = const_cast<std::uint8_t*>(s.data.data() + s.off);
    iov[n].iov_len = len;
    ++n;
  }
  return n;
}

void SendQueue::consume(std::size_t n) {
  bytes_ -= n;
  while (n > 0) {
    Slab& s = slabs_.front();
    const std::size_t len = s.data.size() - s.off;
    if (n < len) {
      s.off += n;
      return;
    }
    n -= len;
    if (spares_.size() < kMaxSpares) spares_.push_back(std::move(s.data));
    slabs_.pop_front();
  }
}

void SendQueue::clear() {
  slabs_.clear();
  spares_.clear();
  bytes_ = 0;
}

// --------------------------------------------------------------- transport

bool Transport::send_serialized(FrameType type, std::size_t n,
                                const SerializeFn& emit) {
  if (n == 0) return !closed();
  // Default path: materialize Frames and defer to send_many. Decorators
  // (chaos FaultInjector) inherit this, so zero-copy call sites still pass
  // through fault injection frame by frame.
  std::vector<Frame> fs(n);
  for (std::size_t i = 0; i < n; ++i) {
    fs[i].type = type;
    wire::Writer w;
    emit(i, w);
    fs[i].payload = w.take();
  }
  return send_many(fs.data(), n);
}

// ------------------------------------------------------------------ inproc

InprocTransport::Pair InprocTransport::make_pair(std::size_t capacity) {
  auto q1 = std::make_shared<Queue>(capacity);
  auto q2 = std::make_shared<Queue>(capacity);
  Pair p;
  p.a = std::shared_ptr<InprocTransport>(new InprocTransport(q1, q2));
  p.b = std::shared_ptr<InprocTransport>(new InprocTransport(q2, q1));
  return p;
}

bool InprocTransport::send(const Frame& f) {
  for (;;) {
    if (out_->closed.load(std::memory_order_acquire) ||
        in_->closed.load(std::memory_order_acquire))
      return false;
    // Serialize producers: the ring itself is strictly single-producer.
    while (out_->producer_lock.test_and_set(std::memory_order_acquire))
      std::this_thread::yield();
    const bool pushed = !out_->closed.load(std::memory_order_acquire) &&
                        out_->ring.push(f);
    out_->producer_lock.clear(std::memory_order_release);
    if (pushed) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      net_obs().frames_sent.inc();
      return true;
    }
    if (out_->closed.load(std::memory_order_acquire)) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(20));  // ring full
  }
}

RecvStatus InprocTransport::recv_until(Frame& out, bool bounded,
                                       double wall_seconds) {
  const double deadline = wall_now() + wall_seconds;
  for (;;) {
    if (auto f = in_->ring.pop()) {
      if (f->type == FrameType::Heartbeat) {
        heartbeats_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      out = std::move(*f);
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      net_obs().frames_received.inc();
      return RecvStatus::Ok;
    }
    if (in_->closed.load(std::memory_order_acquire) && in_->ring.empty())
      return RecvStatus::Closed;
    if (bounded && wall_now() >= deadline) return RecvStatus::TimedOut;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

RecvStatus InprocTransport::recv(Frame& out) {
  return recv_until(out, /*bounded=*/false, 0.0);
}

RecvStatus InprocTransport::recv_for(Frame& out, double wall_seconds) {
  return recv_until(out, /*bounded=*/true, wall_seconds);
}

void InprocTransport::close() {
  out_->closed.store(true, std::memory_order_release);
  in_->closed.store(true, std::memory_order_release);
}

bool InprocTransport::closed() const {
  return out_->closed.load(std::memory_order_acquire) ||
         in_->closed.load(std::memory_order_acquire);
}

TransportStats InprocTransport::stats() const {
  TransportStats s;
  s.frames_sent = frames_sent_.load();
  s.frames_received = frames_received_.load();
  s.heartbeats_seen = heartbeats_.load();
  return s;
}

// --------------------------------------------------------------------- tcp

namespace {

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

TcpTransport::TcpTransport(int fd, TcpOptions opts)
    : fd_(fd),
      opts_(opts),
      decoder_(opts.max_frame),
      inbound_(opts.inbound_capacity) {
  last_rx_wall_.store(wall_now());
  set_nonblock(fd_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (::pipe(wake_pipe_) == 0) {
    set_nonblock(wake_pipe_[0]);
    set_nonblock(wake_pipe_[1]);
  }
  io_ = std::jthread([this] { io_loop(); });
}

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port,
                                                    TcpOptions opts) {
  for (int attempt = 0; attempt <= opts.connect_retries; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opts.retry_backoff_s));

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return nullptr;  // bad address: retrying cannot help
    }
    set_nonblock(fd);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc == 0)
      return std::make_unique<TcpTransport>(fd, opts);
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms = static_cast<int>(opts.connect_timeout_s * 1000.0);
      if (::poll(&pfd, 1, timeout_ms) == 1) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) return std::make_unique<TcpTransport>(fd, opts);
      }
    }
    ::close(fd);
  }
  return nullptr;
}

TcpTransport::~TcpTransport() {
  close();
  if (io_.joinable()) io_.join();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void TcpTransport::wake() {
  if (wake_pipe_[1] >= 0) {
    const char c = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &c, 1);
  }
}

void TcpTransport::shutdown_fd() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpTransport::send(const Frame& f) {
  return send_many(&f, 1);
}

bool TcpTransport::send_many(const Frame* fs, std::size_t n) {
  if (n == 0) return !closed_.load(std::memory_order_acquire);
  if (closed_.load(std::memory_order_acquire)) return false;
  {
    // Encode the whole batch straight into the send-queue slabs: one lock,
    // one wake, one (or few) kernel writes — the wire face of the
    // dataplane's credit-window pipelining.
    support::MutexLock lk(out_mu_);
    if (closed_.load(std::memory_order_acquire)) return false;
    for (std::size_t i = 0; i < n; ++i) outq_.append_frame(fs[i]);
  }
  frames_sent_.fetch_add(n, std::memory_order_relaxed);
  net_obs().frames_sent.inc(n);
  wake();
  return true;
}

bool TcpTransport::send_serialized(FrameType type, std::size_t n,
                                   const SerializeFn& emit) {
  if (n == 0) return !closed_.load(std::memory_order_acquire);
  if (closed_.load(std::memory_order_acquire)) return false;
  {
    // Zero-copy path: serializers write straight into the send slabs — no
    // Frame, no payload vector, no per-frame allocation once slabs warm up.
    support::MutexLock lk(out_mu_);
    if (closed_.load(std::memory_order_acquire)) return false;
    for (std::size_t i = 0; i < n; ++i)
      outq_.build_frame(type, [&](wire::Writer& w) { emit(i, w); });
  }
  frames_sent_.fetch_add(n, std::memory_order_relaxed);
  net_obs().frames_sent.inc(n);
  wake();
  return true;
}

void TcpTransport::io_loop() {
  // Private send queue: slabs are swapped out of outq_ under the lock, the
  // gather-write below runs lock-free, and drained slab storage is donated
  // back so steady-state sending allocates nothing.
  SendQueue pending;
  std::uint8_t rbuf[64 * 1024];
  double closing_since = -1.0;
  bool dead = false;

  while (!dead) {
    bool want_write;
    {
      support::MutexLock lk(out_mu_);
      if (pending.empty()) {
        pending.give_spares(outq_);
        if (!outq_.empty()) pending.take_all(outq_);
      }
      want_write = !pending.empty();
    }

    if (closed_.load(std::memory_order_acquire)) {
      if (!want_write) break;  // flushed: orderly shutdown
      if (closing_since < 0.0)
        closing_since = wall_now();
      else if (wall_now() - closing_since > 1.0)
        break;  // peer not draining; give up on the tail
    }

    pollfd fds[2] = {
        {fd_, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)), 0},
        {wake_pipe_[0], POLLIN, 0},
    };
    const int rc = ::poll(fds, 2, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
    }

    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      for (;;) {
        const ssize_t n = ::read(fd_, rbuf, sizeof rbuf);
        if (n > 0) {
          bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
          net_obs().bytes_received.inc(static_cast<std::uint64_t>(n));
          last_rx_wall_.store(wall_now(), std::memory_order_relaxed);
          decoder_.feed(rbuf, static_cast<std::size_t>(n));
          while (auto f = decoder_.next()) {
            if (f->type == FrameType::Heartbeat) {
              heartbeats_.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            frames_received_.fetch_add(1, std::memory_order_relaxed);
            net_obs().frames_received.inc();
            if (!inbound_.push(std::move(*f))) {
              dead = true;  // closed locally while we blocked
              break;
            }
          }
          if (decoder_.error() != DecodeError::None) {
            decode_error_.store(decoder_.error(), std::memory_order_relaxed);
            if (decoder_.error() == DecodeError::BadCrc)
              net_obs().crc_errors.inc();
            net_obs().decode_errors.inc();
            dead = true;  // corrupt stream: framing is untrustworthy
          }
          if (dead) break;
          continue;
        }
        if (n == 0) {  // EOF: peer closed
          dead = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        dead = true;  // hard socket error
        break;
      }
    }

    if (!dead && want_write && (fds[0].revents & POLLOUT)) {
      // Scatter/gather flush: one sendmsg over every queued slab span.
      // (sendmsg, not writev — only sendmsg takes MSG_NOSIGNAL, and a peer
      // that vanished mid-write must surface as EPIPE here, never as a
      // process-killing SIGPIPE.) A short write consumes exactly what the
      // kernel accepted and the next POLLOUT resumes mid-span; EINTR
      // retries on the spot.
      for (;;) {
        iovec iov[SendQueue::kMaxIov];
        const std::size_t cnt = pending.gather(iov, SendQueue::kMaxIov);
        if (cnt == 0) break;
        std::size_t gathered = 0;
        for (std::size_t i = 0; i < cnt; ++i) gathered += iov[i].iov_len;
        msghdr msg{};
        msg.msg_iov = iov;
        msg.msg_iovlen = cnt;
        const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
        if (n > 0) {
          pending.consume(static_cast<std::size_t>(n));
          bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
          net_obs().bytes_sent.inc(static_cast<std::uint64_t>(n));
          if (static_cast<std::size_t>(n) < gathered)
            break;   // short write: wait for the next POLLOUT
          continue;  // more slabs than iovecs: keep flushing
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) dead = true;
        break;
      }
    }
  }

  closed_.store(true, std::memory_order_release);
  inbound_.close();  // consumers drain parsed frames, then see Closed
  shutdown_fd();
}

RecvStatus TcpTransport::recv(Frame& out) {
  return inbound_.pop(out) == support::ChannelStatus::Ok ? RecvStatus::Ok
                                                         : RecvStatus::Closed;
}

RecvStatus TcpTransport::recv_for(Frame& out, double wall_seconds) {
  // Channel timeouts are simulated-time; scale so the wait is wall time.
  const auto d =
      support::SimDuration(wall_seconds * support::Clock::scale());
  switch (inbound_.pop_for(out, d)) {
    case support::ChannelStatus::Ok:
      return RecvStatus::Ok;
    case support::ChannelStatus::Closed:
      return RecvStatus::Closed;
    case support::ChannelStatus::TimedOut:
      return RecvStatus::TimedOut;
  }
  return RecvStatus::TimedOut;
}

void TcpTransport::close() {
  closed_.store(true, std::memory_order_release);
  inbound_.close();
  wake();
}

bool TcpTransport::closed() const {
  return closed_.load(std::memory_order_acquire);
}

double TcpTransport::idle_seconds() const {
  return wall_now() - last_rx_wall_.load(std::memory_order_relaxed);
}

TransportStats TcpTransport::stats() const {
  TransportStats s;
  s.frames_sent = frames_sent_.load();
  s.frames_received = frames_received_.load();
  s.bytes_sent = bytes_sent_.load();
  s.bytes_received = bytes_received_.load();
  s.heartbeats_seen = heartbeats_.load();
  return s;
}

// ---------------------------------------------------------------- listener

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpTransport> TcpListener::accept_for(double wall_seconds,
                                                      TcpOptions opts) {
  if (fd_ < 0) return nullptr;
  const int timeout_ms =
      wall_seconds < 0.0 ? -1 : static_cast<int>(wall_seconds * 1000.0);
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc != 1) return nullptr;
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) return nullptr;
  return std::make_unique<TcpTransport>(cfd, opts);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace bsk::net
