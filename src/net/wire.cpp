#include "net/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace bsk::net {

namespace wire {

void Writer::u16(std::uint16_t v) {
  buf_->push_back(static_cast<std::uint8_t>(v));
  buf_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void Writer::bytes(const std::uint8_t* p, std::size_t n) {
  buf_->insert(buf_->end(), p, p + n);
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return p_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(p_[pos_++]) << (8 * i);
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(reinterpret_cast<const char*>(p_ + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace wire

// ----------------------------------------------------------------- framing

namespace {

// CRC-32 lookup tables (IEEE 802.3 reflected polynomial 0xEDB88320),
// generated once at first use. Eight tables for the slice-by-8 kernel:
// every frame is CRC'd once per hop on each side, so this sits squarely on
// the dataplane hot path.
struct Crc32Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
};

const Crc32Tables& crc32_tables() {
  static const auto tables = [] {
    Crc32Tables tb;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      tb.t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (int k = 1; k < 8; ++k)
        tb.t[k][i] = tb.t[0][tb.t[k - 1][i] & 0xFF] ^ (tb.t[k - 1][i] >> 8);
    return tb;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* p, std::size_t n, std::uint32_t seed) {
  const auto& tb = crc32_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  // Slice-by-8 main loop: fold eight input bytes per step through the eight
  // tables. The word-fold below assumes little-endian loads; big-endian
  // targets take the bytewise tail loop for everything.
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo, hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      c ^= lo;
      c = tb.t[7][c & 0xFF] ^ tb.t[6][(c >> 8) & 0xFF] ^
          tb.t[5][(c >> 16) & 0xFF] ^ tb.t[4][c >> 24] ^ tb.t[3][hi & 0xFF] ^
          tb.t[2][(hi >> 8) & 0xFF] ^ tb.t[1][(hi >> 16) & 0xFF] ^
          tb.t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  const auto& t0 = tb.t[0];
  for (std::size_t i = 0; i < n; ++i) c = t0[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::None: return "none";
    case DecodeError::ZeroLength: return "zero-length frame";
    case DecodeError::Oversize: return "oversize frame";
    case DecodeError::BadCrc: return "crc mismatch";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_frame_into(f, out);
  return out;
}

void encode_frame_into(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::uint32_t len = static_cast<std::uint32_t>(f.payload.size() + 1);
  out.reserve(out.size() + 8 + len);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  // CRC covers type byte + payload: compute over the payload with the type
  // byte folded in as a one-byte prefix.
  const std::uint8_t type = static_cast<std::uint8_t>(f.type);
  std::uint32_t crc = crc32(&type, 1);
  crc = crc32(f.payload.data(), f.payload.size(), crc);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  out.push_back(type);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

void FrameDecoder::feed(const std::uint8_t* p, std::size_t n) {
  // Compact the consumed prefix before it grows unboundedly.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
}

std::optional<Frame> FrameDecoder::next() {
  if (error_ != DecodeError::None) return std::nullopt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 8) return std::nullopt;
  std::uint32_t len = 0, want_crc = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  for (int i = 0; i < 4; ++i)
    want_crc |= static_cast<std::uint32_t>(buf_[pos_ + 4 + i]) << (8 * i);
  if (len == 0) {
    error_ = DecodeError::ZeroLength;
    return std::nullopt;
  }
  if (len > max_frame_) {
    error_ = DecodeError::Oversize;
    return std::nullopt;
  }
  if (avail < 8 + static_cast<std::size_t>(len)) return std::nullopt;
  if (crc32(buf_.data() + pos_ + 8, len) != want_crc) {
    error_ = DecodeError::BadCrc;
    return std::nullopt;
  }
  Frame f;
  f.type = static_cast<FrameType>(buf_[pos_ + 8]);
  f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 9),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 8 + len));
  pos_ += 8 + len;
  return f;
}

// ----------------------------------------------------------------- task

namespace {

enum class PayloadTag : std::uint8_t {
  None = 0,
  String = 1,
  F64 = 2,
  I64 = 3,
  U64 = 4,
  Bytes = 5,
};

}  // namespace

void put_task(wire::Writer& w, const rt::Task& t) {
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.u64(t.id);
  w.u64(t.order);
  w.f64(t.work_s);
  w.f64(t.size_mb);
  w.f64(t.created);
  w.f64(t.completed);
  if (const auto* s = std::any_cast<std::string>(&t.payload)) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::String));
    w.str(*s);
  } else if (const auto* d = std::any_cast<double>(&t.payload)) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::F64));
    w.f64(*d);
  } else if (const auto* i = std::any_cast<std::int64_t>(&t.payload)) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::I64));
    w.u64(static_cast<std::uint64_t>(*i));
  } else if (const auto* u = std::any_cast<std::uint64_t>(&t.payload)) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::U64));
    w.u64(*u);
  } else if (const auto* b =
                 std::any_cast<std::vector<std::uint8_t>>(&t.payload)) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Bytes));
    w.u32(static_cast<std::uint32_t>(b->size()));
    w.bytes(b->data(), b->size());
  } else {
    // Unknown payload types do not travel; the task itself still does.
    w.u8(static_cast<std::uint8_t>(PayloadTag::None));
  }
}

bool get_task(wire::Reader& r, rt::Task& out) {
  out.kind = static_cast<rt::TaskKind>(r.u8());
  out.id = r.u64();
  out.order = r.u64();
  out.work_s = r.f64();
  out.size_mb = r.f64();
  out.created = r.f64();
  out.completed = r.f64();
  switch (static_cast<PayloadTag>(r.u8())) {
    case PayloadTag::None:
      out.payload.reset();
      break;
    case PayloadTag::String:
      out.payload = r.str();
      break;
    case PayloadTag::F64:
      out.payload = r.f64();
      break;
    case PayloadTag::I64:
      out.payload = static_cast<std::int64_t>(r.u64());
      break;
    case PayloadTag::U64:
      out.payload = r.u64();
      break;
    case PayloadTag::Bytes: {
      const std::uint32_t n = r.u32();
      std::vector<std::uint8_t> b;
      b.reserve(n);
      for (std::uint32_t i = 0; i < n && r.ok(); ++i) b.push_back(r.u8());
      out.payload = std::move(b);
      break;
    }
    default:
      return false;
  }
  return r.ok();
}

// --------------------------------------------------------------- sensors

void put_sensors(wire::Writer& w, const am::Sensors& s) {
  w.u8(s.valid ? 1 : 0);
  w.f64(s.arrival_rate);
  w.f64(s.departure_rate);
  w.f64(s.mean_service_s);
  w.f64(s.mean_latency_s);
  w.u64(s.nworkers);
  w.f64(s.queue_variance);
  w.u64(s.queued);
  w.u8(s.stream_ended ? 1 : 0);
  w.u8(s.unsecured_untrusted ? 1 : 0);
  w.u64(s.insecure_messages);
  w.u64(s.total_failures);
  w.u64(s.new_failures);
}

bool get_sensors(wire::Reader& r, am::Sensors& out) {
  out.valid = r.u8() != 0;
  out.arrival_rate = r.f64();
  out.departure_rate = r.f64();
  out.mean_service_s = r.f64();
  out.mean_latency_s = r.f64();
  out.nworkers = static_cast<std::size_t>(r.u64());
  out.queue_variance = r.f64();
  out.queued = static_cast<std::size_t>(r.u64());
  out.stream_ended = r.u8() != 0;
  out.unsecured_untrusted = r.u8() != 0;
  out.insecure_messages = r.u64();
  out.total_failures = static_cast<std::size_t>(r.u64());
  out.new_failures = static_cast<std::size_t>(r.u64());
  return r.ok();
}

// --------------------------------------------------------------- messages

Frame make_hello(const Hello& h) {
  wire::Writer w;
  w.u32(h.magic);
  w.u16(h.version);
  w.u8(h.role);
  w.str(h.node_kind);
  w.f64(h.clock_scale);
  w.f64(h.heartbeat_wall_s);
  w.u64(h.resume_session);
  w.u32(h.resume_epoch);
  w.u64(h.last_acked_seq);
  w.u8(h.want_shm);
  w.u32(h.shm_ring_bytes);
  return Frame{FrameType::Hello, w.take()};
}

std::optional<Hello> parse_hello(const Frame& f) {
  if (f.type != FrameType::Hello) return std::nullopt;
  wire::Reader r(f.payload);
  Hello h;
  h.magic = r.u32();
  h.version = r.u16();
  h.role = r.u8();
  h.node_kind = r.str();
  h.clock_scale = r.f64();
  h.heartbeat_wall_s = r.f64();
  h.resume_session = r.u64();
  h.resume_epoch = r.u32();
  h.last_acked_seq = r.u64();
  // Trailing shm-negotiation fields: absent on frames from older peers.
  if (r.remaining() >= 5) {
    h.want_shm = r.u8();
    h.shm_ring_bytes = r.u32();
  }
  if (!r.ok() || h.magic != kMagic) return std::nullopt;
  return h;
}

Frame make_hello_ack(const HelloAck& a) {
  wire::Writer w;
  w.u16(a.version);
  w.u64(a.session);
  w.u8(a.ok ? 1 : 0);
  w.u32(a.epoch);
  w.u8(a.resumed ? 1 : 0);
  w.str(a.shm_name);
  w.u32(a.shm_ring_bytes);
  return Frame{FrameType::HelloAck, w.take()};
}

std::optional<HelloAck> parse_hello_ack(const Frame& f) {
  if (f.type != FrameType::HelloAck) return std::nullopt;
  wire::Reader r(f.payload);
  HelloAck a;
  a.version = r.u16();
  a.session = r.u64();
  a.ok = r.u8() != 0;
  a.epoch = r.u32();
  a.resumed = r.u8() != 0;
  // Trailing shm-grant fields: absent on frames from older peers.
  if (r.remaining() >= 8) {
    a.shm_name = r.str();
    a.shm_ring_bytes = r.u32();
  }
  if (!r.ok()) return std::nullopt;
  return a;
}

Frame make_heartbeat(const HeartbeatMsg& hb) {
  wire::Writer w;
  w.u64(hb.seq);
  w.f64(hb.wall_time);
  return Frame{FrameType::Heartbeat, w.take()};
}

std::optional<HeartbeatMsg> parse_heartbeat(const Frame& f) {
  if (f.type != FrameType::Heartbeat) return std::nullopt;
  wire::Reader r(f.payload);
  HeartbeatMsg hb;
  hb.seq = r.u64();
  hb.wall_time = r.f64();
  if (!r.ok()) return std::nullopt;
  return hb;
}

Frame make_task(const rt::Task& t, FrameType type, std::uint64_t seq) {
  wire::Writer w;
  w.u64(seq);
  put_task(w, t);
  return Frame{type, w.take()};
}

std::optional<rt::Task> parse_task(const Frame& f) {
  if (auto p = parse_task_seq(f)) return std::move(p->second);
  return std::nullopt;
}

std::optional<std::pair<std::uint64_t, rt::Task>> parse_task_seq(
    const Frame& f) {
  if (f.type != FrameType::TaskMsg && f.type != FrameType::ResultMsg)
    return std::nullopt;
  wire::Reader r(f.payload);
  const std::uint64_t seq = r.u64();
  rt::Task t;
  if (!get_task(r, t)) return std::nullopt;
  return std::make_pair(seq, std::move(t));
}

Frame make_sensor_req(std::uint32_t seq) {
  wire::Writer w;
  w.u32(seq);
  return Frame{FrameType::SensorReq, w.take()};
}

std::optional<std::uint32_t> parse_sensor_req(const Frame& f) {
  if (f.type != FrameType::SensorReq) return std::nullopt;
  wire::Reader r(f.payload);
  const std::uint32_t seq = r.u32();
  if (!r.ok()) return std::nullopt;
  return seq;
}

Frame make_sensor_rep(std::uint32_t seq, const am::Sensors& s) {
  wire::Writer w;
  w.u32(seq);
  put_sensors(w, s);
  return Frame{FrameType::SensorRep, w.take()};
}

std::optional<std::pair<std::uint32_t, am::Sensors>> parse_sensor_rep(
    const Frame& f) {
  if (f.type != FrameType::SensorRep) return std::nullopt;
  wire::Reader r(f.payload);
  const std::uint32_t seq = r.u32();
  am::Sensors s;
  if (!get_sensors(r, s)) return std::nullopt;
  return std::make_pair(seq, s);
}

Frame make_act_req(const ActRequest& req) {
  wire::Writer w;
  w.u32(req.seq);
  w.u8(static_cast<std::uint8_t>(req.op));
  w.f64(req.rate);
  w.u8(req.require_secure ? 1 : 0);
  return Frame{FrameType::ActReq, w.take()};
}

std::optional<ActRequest> parse_act_req(const Frame& f) {
  if (f.type != FrameType::ActReq) return std::nullopt;
  wire::Reader r(f.payload);
  ActRequest req;
  req.seq = r.u32();
  req.op = static_cast<ActRequest::Op>(r.u8());
  req.rate = r.f64();
  req.require_secure = r.u8() != 0;
  if (!r.ok()) return std::nullopt;
  return req;
}

Frame make_act_rep(const ActReply& rep) {
  wire::Writer w;
  w.u32(rep.seq);
  w.u8(rep.ok ? 1 : 0);
  w.u64(rep.count);
  return Frame{FrameType::ActRep, w.take()};
}

std::optional<ActReply> parse_act_rep(const Frame& f) {
  if (f.type != FrameType::ActRep) return std::nullopt;
  wire::Reader r(f.payload);
  ActReply rep;
  rep.seq = r.u32();
  rep.ok = r.u8() != 0;
  rep.count = r.u64();
  if (!r.ok()) return std::nullopt;
  return rep;
}

Frame make_stats_req(const StatsRequest& req) {
  wire::Writer w;
  w.u32(req.seq);
  w.u8(static_cast<std::uint8_t>(req.what));
  return Frame{FrameType::StatsReq, w.take()};
}

std::optional<StatsRequest> parse_stats_req(const Frame& f) {
  if (f.type != FrameType::StatsReq) return std::nullopt;
  wire::Reader r(f.payload);
  StatsRequest req;
  req.seq = r.u32();
  const std::uint8_t what = r.u8();
  if (!r.ok() || what < 1 ||
      what > static_cast<std::uint8_t>(StatsRequest::What::TraceJsonl))
    return std::nullopt;
  req.what = static_cast<StatsRequest::What>(what);
  return req;
}

Frame make_stats_rep(const StatsReply& rep) {
  wire::Writer w;
  w.u32(rep.seq);
  w.u8(rep.ok ? 1 : 0);
  w.str(rep.text);
  return Frame{FrameType::StatsRep, w.take()};
}

std::optional<StatsReply> parse_stats_rep(const Frame& f) {
  if (f.type != FrameType::StatsRep) return std::nullopt;
  wire::Reader r(f.payload);
  StatsReply rep;
  rep.seq = r.u32();
  rep.ok = r.u8() != 0;
  rep.text = r.str();
  if (!r.ok()) return std::nullopt;
  return rep;
}

// --------------------------------------------------------------- cluster

void put_member(wire::Writer& w, const Member& m) {
  w.str(m.host);
  w.u16(m.port);
  w.u32(m.cores);
  w.f64(m.core_speed);
  w.u64(m.born);
}

bool get_member(wire::Reader& r, Member& out) {
  out.host = r.str();
  out.port = r.u16();
  out.cores = r.u32();
  out.core_speed = r.f64();
  out.born = r.u64();
  return r.ok();
}

void put_view(wire::Writer& w, const MembershipView& v) {
  w.u64(v.epoch);
  w.u32(static_cast<std::uint32_t>(v.members.size()));
  for (const Member& m : v.members) put_member(w, m);
  w.u32(static_cast<std::uint32_t>(v.departed.size()));
  for (const Departed& d : v.departed) {
    w.str(d.key);
    w.u64(d.born);
  }
}

bool get_view(wire::Reader& r, MembershipView& out) {
  out.epoch = r.u64();
  const std::uint32_t nm = r.u32();
  // A count the remaining bytes cannot possibly hold is corruption; bail
  // before resizing (each member is at least 26 encoded bytes).
  if (!r.ok() || nm > r.remaining()) return false;
  out.members.resize(nm);
  for (Member& m : out.members)
    if (!get_member(r, m)) return false;
  const std::uint32_t nd = r.u32();
  if (!r.ok() || nd > r.remaining()) return false;
  out.departed.resize(nd);
  for (Departed& d : out.departed) {
    d.key = r.str();
    d.born = r.u64();
  }
  return r.ok();
}

Frame make_cluster_hello(const ClusterHelloMsg& m) {
  wire::Writer w;
  put_member(w, m.self);
  put_view(w, m.view);
  w.u64(m.digest);
  w.u8(m.full);
  w.u64(m.since);
  return Frame{FrameType::ClusterHello, w.take()};
}

std::optional<ClusterHelloMsg> parse_cluster_hello(const Frame& f) {
  if (f.type != FrameType::ClusterHello) return std::nullopt;
  wire::Reader r(f.payload);
  ClusterHelloMsg m;
  if (!get_member(r, m.self) || !get_view(r, m.view)) return std::nullopt;
  if (r.remaining() > 0) {
    // Delta-gossip trailer; an older encoder's frame is a full exchange.
    m.digest = r.u64();
    m.full = r.u8();
    m.since = r.u64();
    if (!r.ok()) return std::nullopt;
  }
  return m;
}

Frame make_cluster_welcome(const ClusterWelcomeMsg& m) {
  wire::Writer w;
  put_view(w, m.view);
  w.u64(m.digest);
  w.u8(m.full);
  return Frame{FrameType::ClusterWelcome, w.take()};
}

std::optional<ClusterWelcomeMsg> parse_cluster_welcome(const Frame& f) {
  if (f.type != FrameType::ClusterWelcome) return std::nullopt;
  wire::Reader r(f.payload);
  ClusterWelcomeMsg m;
  if (!get_view(r, m.view)) return std::nullopt;
  if (r.remaining() > 0) {
    m.digest = r.u64();
    m.full = r.u8();
    if (!r.ok()) return std::nullopt;
  }
  return m;
}

Frame make_leave(const LeaveMsg& m) {
  wire::Writer w;
  put_member(w, m.self);
  w.u64(m.epoch);
  return Frame{FrameType::Leave, w.take()};
}

std::optional<LeaveMsg> parse_leave(const Frame& f) {
  if (f.type != FrameType::Leave) return std::nullopt;
  wire::Reader r(f.payload);
  LeaveMsg m;
  if (!get_member(r, m.self)) return std::nullopt;
  m.epoch = r.u64();
  if (!r.ok()) return std::nullopt;
  return m;
}

Frame make_membership_req(std::uint32_t seq) {
  wire::Writer w;
  w.u32(seq);
  return Frame{FrameType::MembershipReq, w.take()};
}

std::optional<std::uint32_t> parse_membership_req(const Frame& f) {
  if (f.type != FrameType::MembershipReq) return std::nullopt;
  wire::Reader r(f.payload);
  const std::uint32_t seq = r.u32();
  if (!r.ok()) return std::nullopt;
  return seq;
}

Frame make_membership_rep(const MembershipReply& rep) {
  wire::Writer w;
  w.u32(rep.seq);
  w.u8(rep.ok ? 1 : 0);
  put_view(w, rep.view);
  return Frame{FrameType::MembershipRep, w.take()};
}

std::optional<MembershipReply> parse_membership_rep(const Frame& f) {
  if (f.type != FrameType::MembershipRep) return std::nullopt;
  wire::Reader r(f.payload);
  MembershipReply rep;
  rep.seq = r.u32();
  rep.ok = r.u8() != 0;
  if (!get_view(r, rep.view)) return std::nullopt;
  return rep;
}

}  // namespace bsk::net
