#include "net/remote_conduit.hpp"

namespace bsk::net {

support::ChannelStatus RemoteConduit::pop_wall(rt::Task& out,
                                               double wall_seconds) {
  const bool bounded = wall_seconds >= 0.0;
  const double deadline = bounded ? wall_now() + wall_seconds : 0.0;
  Frame f;
  for (;;) {
    RecvStatus st;
    if (bounded) {
      const double left = deadline - wall_now();
      if (left <= 0.0) return support::ChannelStatus::TimedOut;
      st = tp_->recv_for(f, left);
    } else {
      st = tp_->recv(f);
    }
    if (st == RecvStatus::Closed) return support::ChannelStatus::Closed;
    if (st == RecvStatus::TimedOut) return support::ChannelStatus::TimedOut;

    if (f.type == recv_type_) {
      if (auto t = parse_task(f)) {
        out = std::move(*t);
        return support::ChannelStatus::Ok;
      }
      continue;  // malformed frame: drop, keep the stream alive
    }
    if (f.type == FrameType::SecureAck) {
      tp_->mark_secured();
      continue;
    }
    if (f.type == FrameType::Shutdown) {
      tp_->close();
      return support::ChannelStatus::Closed;
    }
    // Unrelated frame type on this channel: ignore.
  }
}

std::optional<rt::Task> RemoteWorkerNode::process(rt::Task t) {
  std::size_t in_flight;
  {
    // Stage the recovery copy *before* anything can fail: whatever happens
    // from here on — send failure, peer death, a monitor declaring us
    // crashed mid-call — the task is reachable through drain_unacked().
    std::scoped_lock lk(mu_);
    unacked_.push_back(t);
    in_flight = unacked_.size();
  }
  if (failed() || !chan_.push(std::move(t))) {
    failed_.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Credit-based pipelining: keep up to credit_window tasks on the wire
  // before insisting on a result, overlapping transfer with the peer's
  // computation. The result returned belongs to the *oldest* in-flight
  // task, not to `t`; Task::order travels with it, so ordered collection
  // is unaffected. flush() drains the tail at end of stream.
  const std::size_t window = opts_.credit_window == 0 ? 1 : opts_.credit_window;
  if (in_flight < window) return std::nullopt;
  return await_result();
}

std::optional<rt::Task> RemoteWorkerNode::await_result() {
  rt::Task r;
  for (;;) {
    switch (chan_.pop_wall(r, opts_.result_poll_wall_s)) {
      case support::ChannelStatus::Ok: {
        std::scoped_lock lk(mu_);
        if (unacked_.empty()) {
          // A monitor drained the recovery deque and re-offered the tasks
          // elsewhere; this result's task is being re-executed. Discard it
          // to keep result emission exactly-once.
          failed_.store(true, std::memory_order_relaxed);
          return std::nullopt;
        }
        unacked_.pop_front();  // results arrive in send order (FIFO peer)
        // A WorkerDone-kind reply means the peer's node filtered the task.
        if (r.kind == rt::TaskKind::WorkerDone) return std::nullopt;
        return r;
      }
      case support::ChannelStatus::Closed:
        failed_.store(true, std::memory_order_relaxed);
        return std::nullopt;
      case support::ChannelStatus::TimedOut:
        // Long-running task or dead peer? Heartbeats decide.
        if (failed()) {
          failed_.store(true, std::memory_order_relaxed);
          return std::nullopt;
        }
        break;
    }
  }
}

std::optional<rt::Task> RemoteWorkerNode::flush() {
  for (;;) {
    {
      std::scoped_lock lk(mu_);
      if (unacked_.empty()) return std::nullopt;
    }
    if (failed_.load(std::memory_order_relaxed)) return std::nullopt;
    if (auto r = await_result()) return r;
    // nullopt here is either a filtered task (keep draining) or a failure
    // (failed_ is now set and the next iteration exits; the farm recovers
    // the leftovers through drain_unacked()).
  }
}

std::vector<rt::Task> RemoteWorkerNode::drain_unacked() {
  std::scoped_lock lk(mu_);
  std::vector<rt::Task> out(std::make_move_iterator(unacked_.begin()),
                            std::make_move_iterator(unacked_.end()));
  unacked_.clear();
  return out;
}

bool client_handshake(Transport& tp, const Hello& hello,
                      double timeout_wall_s, HelloAck* ack_out) {
  if (!tp.send(make_hello(hello))) return false;
  const double deadline = wall_now() + timeout_wall_s;
  Frame f;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) return false;
    if (tp.recv_for(f, left) != RecvStatus::Ok) return false;
    if (f.type != FrameType::HelloAck) continue;  // e.g. an early heartbeat
    const auto ack = parse_hello_ack(f);
    if (!ack) return false;
    if (ack_out) *ack_out = *ack;
    return ack->ok && ack->version == kProtocolVersion;
  }
}

bool server_handshake(Transport& tp, double timeout_wall_s,
                      std::uint64_t session, Hello* hello_out) {
  Frame f;
  if (tp.recv_for(f, timeout_wall_s) != RecvStatus::Ok) return false;
  if (f.type != FrameType::Hello) return false;
  const auto hello = parse_hello(f);
  HelloAck ack;
  ack.session = session;
  ack.ok = hello.has_value() && hello->magic == kMagic &&
           hello->version == kProtocolVersion;
  tp.send(make_hello_ack(ack));
  if (!ack.ok) return false;
  if (hello_out) *hello_out = *hello;
  return true;
}

}  // namespace bsk::net
