#include "net/remote_conduit.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"

namespace bsk::net {

namespace {

// Fault-tolerance path counters, summed across all remote workers.
struct ConduitObs {
  obs::Counter& reconnects = obs::counter(
      "bsk_net_reconnects_total", "successful reconnect handshakes");
  obs::Counter& resumes = obs::counter(
      "bsk_net_session_resumes_total",
      "reconnects where the server kept worker state (resumed=true)");
  obs::Counter& replaces = obs::counter(
      "bsk_net_session_replaces_total",
      "reconnects that restarted the session from scratch");
  obs::Counter& retransmits = obs::counter(
      "bsk_net_retransmits_total", "task frames re-sent (timeout or replay)");
  obs::Counter& credit_stalls = obs::counter(
      "bsk_net_credit_stalls_total",
      "sends that filled the credit window and had to await a result");
  obs::Counter& hard_failures = obs::counter(
      "bsk_net_worker_hard_failures_total",
      "remote workers declared crashed (grace window expired)");
};

ConduitObs& conduit_obs() {
  static ConduitObs o;
  return o;
}

}  // namespace

support::ChannelStatus RemoteConduit::pop_wall(rt::Task& out,
                                               double wall_seconds) {
  const bool bounded = wall_seconds >= 0.0;
  const double deadline = bounded ? wall_now() + wall_seconds : 0.0;
  Frame f;
  for (;;) {
    RecvStatus st;
    if (bounded) {
      const double left = deadline - wall_now();
      if (left <= 0.0) return support::ChannelStatus::TimedOut;
      st = tp_->recv_for(f, left);
    } else {
      st = tp_->recv(f);
    }
    if (st == RecvStatus::Closed) return support::ChannelStatus::Closed;
    if (st == RecvStatus::TimedOut) return support::ChannelStatus::TimedOut;

    if (f.type == recv_type_) {
      if (auto t = parse_task(f)) {
        out = std::move(*t);
        return support::ChannelStatus::Ok;
      }
      continue;  // malformed frame: drop, keep the stream alive
    }
    if (f.type == FrameType::SecureAck) {
      tp_->mark_secured();
      continue;
    }
    if (f.type == FrameType::Shutdown || f.type == FrameType::Leave) {
      tp_->close();
      return support::ChannelStatus::Closed;
    }
    // Unrelated frame type on this channel: ignore.
  }
}

void RemoteWorkerNode::mark_hard_failed() const {
  if (hard_failed_.exchange(true)) return;
  // A graceful goodbye (Leave frame) is a departure, not a crash: it must
  // not feed the endpoint quarantine or the hard-failure counter, or a
  // daemon draining at end of run would poison its own endpoint.
  const bool graceful = peer_left_.load(std::memory_order_relaxed);
  if (!graceful) conduit_obs().hard_failures.inc();
  {
    support::MutexLock lk(tp_mu_);
    tp_->close();
  }
  if (!graceful && opts_.on_hard_fail) opts_.on_hard_fail();
}

bool RemoteWorkerNode::failed() const {
  if (hard_failed_.load(std::memory_order_relaxed)) return true;
  const auto tp = transport_ptr();
  if (!transport_sick(*tp)) return false;
  if (!resumable()) {
    mark_hard_failed();
    return true;
  }
  // Transient-vs-crash: a sick connection starts (or continues) the grace
  // window; only its expiry is a failure. The worker thread races to resume
  // within the same window.
  double expected = -1.0;
  down_since_.compare_exchange_strong(expected, wall_now());
  const double since = down_since_.load(std::memory_order_relaxed);
  if (since >= 0.0 && wall_now() - since > opts_.reconnect_grace_wall_s) {
    mark_hard_failed();
    return true;
  }
  return false;
}

std::optional<rt::Task> RemoteWorkerNode::process(rt::Task t) {
  link_.charge(t);
  std::size_t in_flight;
  {
    // Stage the recovery copy *before* anything can fail: whatever happens
    // from here on — send failure, peer death, a monitor declaring us
    // crashed mid-call — the task is reachable through drain_unacked().
    support::MutexLock lk(mu_);
    const std::uint64_t seq = ++next_seq_;
    unacked_.push_back(PendingTask{seq, std::move(t), wall_now()});
    in_flight = unacked_.size();
  }
  if (hard_failed_.load(std::memory_order_relaxed)) return std::nullopt;
  bool sent = true;
  {
    // Zero-copy send straight from the staged recovery copy: the lock
    // keeps the entry alive under the serializer (the retransmit path
    // already sends under mu_, so there is no new lock-ordering edge).
    const auto tp = transport_ptr();
    support::MutexLock lk(mu_);
    if (!unacked_.empty()) {
      const PendingTask& p = unacked_.back();
      sent = tp->send_serialized(FrameType::TaskMsg, 1,
                                 [&p](std::size_t, wire::Writer& w) {
                                   w.u64(p.seq);
                                   put_task(w, p.task);
                                 });
    }
  }
  if (!sent) {
    // Send failure is a sick connection, not yet a crash: a successful
    // resume replays the staged task along with everything else unacked.
    if (!try_resume()) {
      mark_hard_failed();
      return std::nullopt;
    }
  }
  // Credit-based pipelining: keep up to credit_window tasks on the wire
  // before insisting on a result, overlapping transfer with the peer's
  // computation. The result returned belongs to the *oldest* in-flight
  // task, not to `t`; Task::order travels with it, so ordered collection
  // is unaffected. flush() drains the tail at end of stream.
  const std::size_t window = opts_.credit_window == 0 ? 1 : opts_.credit_window;
  if (in_flight < window) return std::nullopt;
  conduit_obs().credit_stalls.inc();
  return await_result();
}

std::optional<rt::Task> RemoteWorkerNode::await_result() {
  for (;;) {
    // Deliver the oldest task's result if it is already buffered (arrived
    // out of order behind a reordering fault or a resume replay).
    {
      support::MutexLock lk(mu_);
      if (unacked_.empty()) {
        // A monitor drained the recovery deque and re-offered the tasks
        // elsewhere; whatever arrives now is being re-executed. Discard to
        // keep result emission exactly-once.
        mark_hard_failed();
        return std::nullopt;
      }
      auto it = ready_.find(unacked_.front().seq);
      if (it != ready_.end()) {
        rt::Task r = std::move(it->second);
        ready_.erase(it);
        last_acked_ = unacked_.front().seq;
        unacked_.pop_front();
        if (r.kind == rt::TaskKind::WorkerDone) return std::nullopt;
        return r;
      }
    }
    if (hard_failed_.load(std::memory_order_relaxed)) return std::nullopt;

    Frame f;
    const auto tp = transport_ptr();
    switch (tp->recv_for(f, opts_.result_poll_wall_s)) {
      case RecvStatus::Ok: {
        if (f.type == FrameType::SecureAck) {
          tp->mark_secured();
          continue;
        }
        if (f.type == FrameType::Shutdown) {
          tp->close();
          continue;  // next iteration sees the sick connection
        }
        if (f.type == FrameType::Leave) {
          // Orderly peer departure: fail fast instead of burning the whole
          // reconnect grace window dialing a daemon that said goodbye.
          peer_left_.store(true, std::memory_order_relaxed);
          tp->close();
          continue;
        }
        if (f.type != FrameType::ResultMsg) continue;
        auto parsed = parse_task_seq(f);
        if (!parsed) continue;  // corrupt payload: graceful skip, protocol
                                // recovers by retransmitting the oldest
        const std::uint64_t seq = parsed->first;
        rt::Task r = std::move(parsed->second);

        support::MutexLock lk(mu_);
        if (unacked_.empty()) {
          mark_hard_failed();
          return std::nullopt;
        }
        switch (classify_result(unacked_, seq, r)) {
          case ResultClass::DeliverFront:
            last_acked_ = seq;
            unacked_.pop_front();
            if (r.kind == rt::TaskKind::WorkerDone) return std::nullopt;
            return r;
          case ResultClass::BufferAhead:
            ready_.emplace(seq, std::move(r));
            continue;
          case ResultClass::DuplicateBehind:
            // Behind the oldest: already delivered once. Suppress.
            dups_suppressed_.fetch_add(1, std::memory_order_relaxed);
            continue;
          case ResultClass::Poison:   // corrupt masquerade: not an ack
          case ResultClass::Orphan:   // matches nothing we sent
            continue;
        }
        continue;
      }
      case RecvStatus::Closed:
        if (!try_resume()) {
          mark_hard_failed();
          return std::nullopt;
        }
        continue;
      case RecvStatus::TimedOut: {
        if (transport_sick(*tp)) {
          if (!try_resume()) {
            mark_hard_failed();
            return std::nullopt;
          }
          continue;
        }
        // Connection healthy but the oldest task is silent: its TaskMsg or
        // ResultMsg was lost. Retransmit (the peer dedups by seq).
        if (opts_.retransmit_timeout_wall_s > 0.0) {
          support::MutexLock lk(mu_);
          if (!unacked_.empty() &&
              wall_now() - unacked_.front().last_sent >
                  opts_.retransmit_timeout_wall_s) {
            PendingTask& front = unacked_.front();
            front.last_sent = wall_now();
            tp->send_serialized(FrameType::TaskMsg, 1,
                                [&front](std::size_t, wire::Writer& w) {
                                  w.u64(front.seq);
                                  put_task(w, front.task);
                                });
            retransmits_.fetch_add(1, std::memory_order_relaxed);
            conduit_obs().retransmits.inc();
          }
        }
        continue;
      }
    }
  }
}

bool RemoteWorkerNode::try_resume() {
  if (!resumable()) return false;
  double expected = -1.0;
  down_since_.compare_exchange_strong(expected, wall_now());
  double backoff = opts_.reconnect_backoff_wall_s;

  while (!hard_failed_.load(std::memory_order_relaxed)) {
    const double since = down_since_.load(std::memory_order_relaxed);
    if (since < 0.0 || wall_now() - since > opts_.reconnect_grace_wall_s)
      return false;  // grace window closed: crash semantics take over

    if (auto fresh = opts_.reconnect(); fresh && !fresh->closed()) {
      Hello h = opts_.hello;
      ResumeFence fence{session_.load(std::memory_order_relaxed),
                        epoch_.load(std::memory_order_relaxed)};
      {
        support::MutexLock lk(mu_);
        fence.stamp(h, last_acked_);
      }
      HelloAck ack;
      if (client_handshake(*fresh, h, opts_.handshake_timeout_wall_s, &ack)) {
        // Post-handshake upgrade (e.g. the pool's colocated shm attach)
        // happens before the swap and before the replay, so replayed tasks
        // ride the upgraded path from the first frame.
        if (opts_.upgrade) {
          if (auto up = opts_.upgrade(fresh, ack)) fresh = std::move(up);
        }
        bool was_secured;
        {
          support::MutexLock lk(tp_mu_);
          was_secured = tp_->secured();
          tp_->close();
          tp_ = fresh;
          link_.set_transport(fresh);
        }
        fence.commit(ack);
        session_.store(fence.session, std::memory_order_relaxed);
        epoch_.store(fence.epoch, std::memory_order_relaxed);
        conduit_obs().reconnects.inc();
        if (ack.resumed) {
          resumes_.fetch_add(1, std::memory_order_relaxed);
          conduit_obs().resumes.inc();
        } else {
          conduit_obs().replaces.inc();
        }
        if (was_secured) {
          // The security contract survives the blip: re-upgrade before any
          // replayed task crosses the new connection.
          fresh->send(Frame{FrameType::SecureReq, {}});
          fresh->mark_secured();
        }
        // Replay everything unacked, serialized straight out of the pending
        // deque in one scatter/gather batch. The peer's seq dedup turns
        // replays of already-executed tasks into cached-result resends, so
        // this is safe whether the session resumed or restarted from scratch.
        {
          support::MutexLock lk(mu_);
          if (!unacked_.empty()) {
            const double now = wall_now();
            fresh->send_serialized(FrameType::TaskMsg, unacked_.size(),
                                   [this](std::size_t i, wire::Writer& w) {
                                     w.u64(unacked_[i].seq);
                                     put_task(w, unacked_[i].task);
                                   });
            for (PendingTask& p : unacked_) p.last_sent = now;
            retransmits_.fetch_add(unacked_.size(),
                                   std::memory_order_relaxed);
            conduit_obs().retransmits.inc(unacked_.size());
          }
        }
        down_since_.store(-1.0, std::memory_order_relaxed);
        return true;
      }
      fresh->close();
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff = std::min(backoff * 2.0, opts_.reconnect_backoff_max_wall_s);
  }
  return false;
}

std::optional<rt::Task> RemoteWorkerNode::flush() {
  for (;;) {
    {
      support::MutexLock lk(mu_);
      if (unacked_.empty()) return std::nullopt;
    }
    if (hard_failed_.load(std::memory_order_relaxed)) return std::nullopt;
    if (auto r = await_result()) return r;
    // nullopt here is either a filtered task (keep draining) or a hard
    // failure (the next iteration exits; the farm recovers the leftovers
    // through drain_unacked()).
  }
}

std::vector<rt::Task> RemoteWorkerNode::drain_unacked() {
  support::MutexLock lk(mu_);
  std::vector<rt::Task> out;
  out.reserve(unacked_.size());
  for (PendingTask& p : unacked_) out.push_back(std::move(p.task));
  unacked_.clear();
  ready_.clear();  // buffered results belong to tasks now re-offered elsewhere
  return out;
}

bool client_handshake(Transport& tp, const Hello& hello,
                      double timeout_wall_s, HelloAck* ack_out) {
  if (!tp.send(make_hello(hello))) return false;
  const double deadline = wall_now() + timeout_wall_s;
  Frame f;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) return false;
    if (tp.recv_for(f, left) != RecvStatus::Ok) return false;
    if (f.type != FrameType::HelloAck) continue;  // e.g. an early heartbeat
    const auto ack = parse_hello_ack(f);
    if (!ack) return false;
    if (ack_out) *ack_out = *ack;
    return ack->ok && ack->version == kProtocolVersion;
  }
}

bool server_handshake(Transport& tp, double timeout_wall_s,
                      std::uint64_t session, Hello* hello_out) {
  Frame f;
  if (tp.recv_for(f, timeout_wall_s) != RecvStatus::Ok) return false;
  if (f.type != FrameType::Hello) return false;
  const auto hello = parse_hello(f);
  HelloAck ack;
  ack.session = session;
  ack.ok = hello.has_value() && hello->magic == kMagic &&
           hello->version == kProtocolVersion;
  tp.send(make_hello_ack(ack));
  if (!ack.ok) return false;
  if (hello_out) *hello_out = *hello;
  return true;
}

}  // namespace bsk::net
