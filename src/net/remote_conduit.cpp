#include "net/remote_conduit.hpp"

namespace bsk::net {

support::ChannelStatus RemoteConduit::pop_wall(rt::Task& out,
                                               double wall_seconds) {
  const bool bounded = wall_seconds >= 0.0;
  const double deadline = bounded ? wall_now() + wall_seconds : 0.0;
  Frame f;
  for (;;) {
    RecvStatus st;
    if (bounded) {
      const double left = deadline - wall_now();
      if (left <= 0.0) return support::ChannelStatus::TimedOut;
      st = tp_->recv_for(f, left);
    } else {
      st = tp_->recv(f);
    }
    if (st == RecvStatus::Closed) return support::ChannelStatus::Closed;
    if (st == RecvStatus::TimedOut) return support::ChannelStatus::TimedOut;

    if (f.type == recv_type_) {
      if (auto t = parse_task(f)) {
        out = std::move(*t);
        return support::ChannelStatus::Ok;
      }
      continue;  // malformed frame: drop, keep the stream alive
    }
    if (f.type == FrameType::SecureAck) {
      tp_->mark_secured();
      continue;
    }
    if (f.type == FrameType::Shutdown) {
      tp_->close();
      return support::ChannelStatus::Closed;
    }
    // Unrelated frame type on this channel: ignore.
  }
}

std::optional<rt::Task> RemoteWorkerNode::process(rt::Task t) {
  if (failed()) {
    failed_.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!chan_.push(std::move(t))) {
    failed_.store(true, std::memory_order_relaxed);
    return std::nullopt;
  }
  rt::Task r;
  for (;;) {
    switch (chan_.pop_wall(r, opts_.result_poll_wall_s)) {
      case support::ChannelStatus::Ok:
        // A WorkerDone-kind reply means the peer's node filtered the task.
        if (r.kind == rt::TaskKind::WorkerDone) return std::nullopt;
        return r;
      case support::ChannelStatus::Closed:
        failed_.store(true, std::memory_order_relaxed);
        return std::nullopt;
      case support::ChannelStatus::TimedOut:
        // Long-running task or dead peer? Heartbeats decide.
        if (failed()) {
          failed_.store(true, std::memory_order_relaxed);
          return std::nullopt;
        }
        break;
    }
  }
}

bool client_handshake(Transport& tp, const Hello& hello,
                      double timeout_wall_s, HelloAck* ack_out) {
  if (!tp.send(make_hello(hello))) return false;
  const double deadline = wall_now() + timeout_wall_s;
  Frame f;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) return false;
    if (tp.recv_for(f, left) != RecvStatus::Ok) return false;
    if (f.type != FrameType::HelloAck) continue;  // e.g. an early heartbeat
    const auto ack = parse_hello_ack(f);
    if (!ack) return false;
    if (ack_out) *ack_out = *ack;
    return ack->ok && ack->version == kProtocolVersion;
  }
}

bool server_handshake(Transport& tp, double timeout_wall_s,
                      std::uint64_t session, Hello* hello_out) {
  Frame f;
  if (tp.recv_for(f, timeout_wall_s) != RecvStatus::Ok) return false;
  if (f.type != FrameType::Hello) return false;
  const auto hello = parse_hello(f);
  HelloAck ack;
  ack.session = session;
  ack.ok = hello.has_value() && hello->magic == kMagic &&
           hello->version == kProtocolVersion;
  tp.send(make_hello_ack(ack));
  if (!ack.ok) return false;
  if (hello_out) *hello_out = *hello;
  return true;
}

}  // namespace bsk::net
