#include "net/remote_abc.hpp"

namespace bsk::net {

// ---------------------------------------------------------------- client

am::Sensors RemoteAbc::sense() {
  am::Sensors blackout;
  blackout.valid = false;

  support::MutexLock lk(rpc_mu_);
  const std::uint32_t seq = next_seq_++;
  if (!tp_->send(make_sensor_req(seq))) return blackout;

  const double deadline = wall_now() + opts_.rpc_timeout_wall_s;
  Frame f;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) return blackout;
    if (tp_->recv_for(f, left) != RecvStatus::Ok) return blackout;
    if (f.type == FrameType::SecureAck) {
      tp_->mark_secured();
      continue;
    }
    if (f.type != FrameType::SensorRep) continue;
    const auto rep = parse_sensor_rep(f);
    if (!rep || rep->first != seq) continue;  // stale reply: keep waiting
    return rep->second;
  }
}

std::optional<ActReply> RemoteAbc::call(ActRequest req) {
  support::MutexLock lk(rpc_mu_);
  req.seq = next_seq_++;
  if (!tp_->send(make_act_req(req))) return std::nullopt;

  const double deadline = wall_now() + opts_.rpc_timeout_wall_s;
  Frame f;
  for (;;) {
    const double left = deadline - wall_now();
    if (left <= 0.0) return std::nullopt;
    if (tp_->recv_for(f, left) != RecvStatus::Ok) return std::nullopt;
    if (f.type == FrameType::SecureAck) {
      tp_->mark_secured();
      continue;
    }
    if (f.type != FrameType::ActRep) continue;
    const auto rep = parse_act_rep(f);
    if (!rep || rep->seq != req.seq) continue;
    return rep;
  }
}

bool RemoteAbc::add_worker() {
  // Phase one runs locally: concern managers examine the intent before
  // anything crosses the wire.
  am::Intent intent;
  intent.action = am::Intent::Action::AddWorker;
  intent.target_untrusted = opts_.assume_remote_untrusted;
  if (!pass_gate(intent)) return false;

  ActRequest req;
  req.op = ActRequest::Op::AddWorker;
  req.require_secure = intent.require_secure;
  const auto rep = call(req);
  return rep && rep->ok;
}

bool RemoteAbc::remove_worker() {
  am::Intent intent;
  intent.action = am::Intent::Action::RemoveWorker;
  if (!pass_gate(intent)) return false;

  ActRequest req;
  req.op = ActRequest::Op::RemoveWorker;
  const auto rep = call(req);
  return rep && rep->ok;
}

std::size_t RemoteAbc::rebalance() {
  ActRequest req;
  req.op = ActRequest::Op::Rebalance;
  const auto rep = call(req);
  return rep ? static_cast<std::size_t>(rep->count) : 0;
}

bool RemoteAbc::set_rate(double tasks_per_s) {
  am::Intent intent;
  intent.action = am::Intent::Action::SetRate;
  intent.rate = tasks_per_s;
  if (!pass_gate(intent)) return false;

  ActRequest req;
  req.op = ActRequest::Op::SetRate;
  req.rate = intent.rate;
  const auto rep = call(req);
  return rep && rep->ok;
}

std::size_t RemoteAbc::secure_links() {
  am::Intent intent;
  intent.action = am::Intent::Action::SecureLinks;
  if (!pass_gate(intent)) return 0;

  ActRequest req;
  req.op = ActRequest::Op::SecureLinks;
  const auto rep = call(req);
  if (!rep || !rep->ok) return 0;
  tp_->mark_secured();  // the control channel itself is upgraded too
  return static_cast<std::size_t>(rep->count);
}

// ---------------------------------------------------------------- server

void AbcServer::serve() {
  Frame f;
  while (tp_->recv(f) == RecvStatus::Ok) {
    if (f.type == FrameType::Shutdown) break;
    handle(f);
  }
  tp_->close();
}

void AbcServer::start() {
  if (thread_.joinable()) return;
  thread_ = std::jthread([this] { serve(); });
}

void AbcServer::stop() {
  tp_->close();
  if (thread_.joinable()) thread_.join();
}

void AbcServer::handle(const Frame& f) {
  switch (f.type) {
    case FrameType::SensorReq: {
      const auto seq = parse_sensor_req(f);
      if (!seq) return;
      tp_->send(make_sensor_rep(*seq, target_.sense()));
      served_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case FrameType::ActReq: {
      const auto req = parse_act_req(f);
      if (!req) return;
      ActReply rep;
      rep.seq = req->seq;
      switch (req->op) {
        case ActRequest::Op::AddWorker: {
          // Phase two: replay the client's gate decision on this side so
          // the wrapped farm pre-secures the worker before instantiation.
          const bool require_secure = req->require_secure;
          target_.set_commit_gate([require_secure](am::Intent& i) {
            if (require_secure) i.require_secure = true;
            return true;
          });
          rep.ok = target_.add_worker();
          target_.set_commit_gate({});
          rep.count = rep.ok ? 1 : 0;
          break;
        }
        case ActRequest::Op::RemoveWorker:
          rep.ok = target_.remove_worker();
          rep.count = rep.ok ? 1 : 0;
          break;
        case ActRequest::Op::Rebalance:
          rep.count = target_.rebalance();
          rep.ok = true;
          break;
        case ActRequest::Op::SetRate:
          rep.ok = target_.set_rate(req->rate);
          break;
        case ActRequest::Op::SecureLinks:
          rep.count = target_.secure_links();
          rep.ok = true;
          tp_->mark_secured();
          break;
      }
      tp_->send(make_act_rep(rep));
      served_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    case FrameType::SecureReq:
      tp_->mark_secured();
      tp_->send(Frame{FrameType::SecureAck, {}});
      return;
    default:
      return;  // heartbeats are absorbed below us; ignore the rest
  }
}

}  // namespace bsk::net
