#pragma once
// bsk::net chaos: deterministic fault injection for transports.
//
// A FaultInjector is a Transport decorator: it wraps any connected endpoint
// and perturbs the frame stream according to a FaultPlan — per-frame drop,
// duplication, adjacent-pair reordering, payload byte corruption, fixed or
// jittered delivery delay, timed one-way or full partitions, and a hard
// connection kill. The wrapped code (conduits, pools, handshakes) cannot
// tell it is being tortured; that is the point — every self-healing path in
// the stack is exercised through its public interface.
//
// Determinism is the design center. Every per-frame decision is a *pure
// hash* of (plan seed, stream id, frame index) — not a draw from a shared
// sequential RNG — so the fault schedule for a given seed is byte-for-byte
// identical across runs regardless of thread interleaving or how many
// connections share the plan. Two runs with the same seed drop the same
// frames, duplicate the same frames, corrupt the same bytes. Timed events
// (partitions, kill) are anchored to a wall-clock start shared by every
// injector on the plan, so "a 300 ms partition at t=1s" hits all
// connections in the same window.
//
// Layering note: faults operate on *frames before encoding*, so corruption
// here produces structurally valid frames whose payload fails to parse —
// exercising the graceful typed-decode path in receivers. Byte-stream
// corruption (caught by the frame CRC) is a different layer, exercised by
// the wire tests directly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "support/thread_annotations.hpp"

namespace bsk::net {

/// The fault script: probabilities are per frame in [0,1]; times are wall
/// seconds relative to the plan's start anchor.
struct ChaosSpec {
  double drop = 0.0;     ///< frame silently lost
  double dup = 0.0;      ///< frame delivered twice
  double reorder = 0.0;  ///< frame swapped with its successor
  double corrupt = 0.0;  ///< payload bytes damaged (parse fails downstream)
  double delay_s = 0.0;         ///< fixed delivery delay per delayed frame
  double delay_jitter_s = 0.0;  ///< extra uniform jitter on top of delay_s
  /// Frames with a delay decision sleep delay_s + u*delay_jitter_s. A frame
  /// is delayed when either knob is nonzero and the per-frame hash says so.
  double delay_prob = 0.0;

  /// A timed partition window. inbound/outbound select one-way partitions
  /// (both = full). During the window, affected frames vanish (outbound) or
  /// delivery stalls (inbound) — and the injector reports the growing
  /// silence via idle_seconds() so liveness detection fires exactly as it
  /// would for a real network hole.
  struct Partition {
    double at_s = 0.0;
    double duration_s = 0.0;
    bool inbound = true;
    bool outbound = true;
  };
  std::vector<Partition> partitions;

  /// Hard connection kill at this elapsed time (< 0 = never). The injector
  /// closes the wrapped transport: indistinguishable from a peer crash.
  double kill_at_s = -1.0;
};

/// Per-frame fault decision — the pure-hash output, exposed so tests can
/// assert schedule reproducibility without driving real connections.
struct FaultDecision {
  bool drop = false;
  bool dup = false;
  bool reorder = false;
  bool corrupt = false;
  double delay_s = 0.0;
};

/// What one injector actually did to its stream.
struct ChaosStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t blocked_outbound = 0;  ///< swallowed by an outbound partition
  std::uint64_t stalled_inbound = 0;   ///< delivery stalls under inbound partition
  std::uint64_t kills = 0;
};

/// A seeded fault schedule shared by every injector participating in one
/// chaos run. Thread-safe; decide() is pure and lock-free.
class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, ChaosSpec spec)
      : seed_(seed), spec_(std::move(spec)) {}

  /// Stable 64-bit id for a named stream (FNV-1a). Each injector derives
  /// distinct ids for its outbound and inbound directions.
  static std::uint64_t stream_id(const std::string& name);

  /// The fault decision for frame `frame_idx` of stream `stream`. Pure: no
  /// state is read or written, so the schedule is reproducible regardless
  /// of call order or interleaving.
  FaultDecision decide(std::uint64_t stream, std::uint64_t frame_idx) const;

  /// Deterministic corruption parameters for a frame: (byte offset seed,
  /// xor mask — never 0, so the byte always changes).
  std::pair<std::uint64_t, std::uint8_t> corruption(
      std::uint64_t stream, std::uint64_t frame_idx) const;

  /// Anchor the timed-event clock. First call wins; every injector calls it
  /// on construction so the first connection starts the timeline.
  void start();

  /// Wall seconds since start() (0 before the anchor is set).
  double elapsed() const;

  /// Seconds since the currently-active partition covering this direction
  /// began, or nullopt when no partition is active.
  std::optional<double> partition_elapsed(bool outbound) const;

  /// True once the kill time has passed (and a kill is scripted).
  bool kill_due() const;

  const ChaosSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  ChaosSpec spec_;
  std::atomic<double> start_wall_{-1.0};
};

/// Transport decorator applying a FaultPlan to both directions of a
/// connection. Outbound faults act on send(); inbound faults act on
/// recv()/recv_for() — so wrapping only one end of a connection still
/// exercises every fault class in both directions.
class FaultInjector final : public Transport {
 public:
  /// `stream` names this connection in the plan ("w0", "w1", ...); the
  /// outbound and inbound directions get independent fault schedules.
  FaultInjector(std::shared_ptr<Transport> inner,
                std::shared_ptr<FaultPlan> plan, std::string stream);

  bool send(const Frame& f) override;
  bool send_many(const Frame* fs, std::size_t n) override;
  RecvStatus recv(Frame& out) override;
  RecvStatus recv_for(Frame& out, double wall_seconds) override;
  void close() override;
  bool closed() const override;

  /// During an inbound partition, reports the silence the liveness detector
  /// would see on a real network hole (heartbeats absorbed by the wrapped
  /// transport do not mask it). Otherwise defers to the wrapped transport.
  double idle_seconds() const override;

  TransportStats stats() const override { return inner_->stats(); }

  ChaosStats chaos_stats() const;
  const std::shared_ptr<Transport>& inner() const { return inner_; }
  const std::shared_ptr<FaultPlan>& plan() const { return plan_; }

 private:
  bool send_one(const Frame& f);
  /// Applies the scripted kill once; true if the connection is (now) dead.
  bool kill_if_due();
  void corrupt_frame(Frame& f, std::uint64_t stream, std::uint64_t idx) const;

  std::shared_ptr<Transport> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::uint64_t out_id_;
  std::uint64_t in_id_;

  support::Mutex out_mu_{"FaultInjector.send"};  ///< serializes send faults
  std::optional<Frame> held_ BSK_GUARDED_BY(out_mu_);  ///< reorder: parked until the next send
  std::uint64_t out_idx_ BSK_GUARDED_BY(out_mu_) = 0;

  support::Mutex in_mu_{"FaultInjector.recv"};  ///< single-consumer, but be safe
  std::optional<Frame> dup_in_ BSK_GUARDED_BY(in_mu_);  ///< inbound duplicate awaiting redelivery
  std::uint64_t in_idx_ BSK_GUARDED_BY(in_mu_) = 0;

  std::atomic<bool> killed_{false};

  mutable support::Mutex stats_mu_{"FaultInjector.stats"};
  ChaosStats stats_ BSK_GUARDED_BY(stats_mu_);
};

}  // namespace bsk::net
