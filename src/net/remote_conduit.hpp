#pragma once
// Transport-backed runtime adapters: the seam between rt::Farm and bsk::net.
//
// Three pieces, layered exactly like their local counterparts:
//
//   RemoteLink — an rt::Link whose secure() upgrades the underlying wire
//     connection (SecureReq; the peer confirms with SecureAck). Cost
//     accounting (simulated transfer and handshake time) stays in the base
//     class, so managers observe the same economics for local and remote
//     edges.
//
//   RemoteConduit — an rt::Conduit that sends pushed tasks as TaskMsg
//     frames and turns received ResultMsg frames back into tasks.
//     steal_back() returns nothing: tasks already committed to the wire
//     cannot be recalled (crash recovery instead replays the in-flight copy
//     kept on the parent side).
//
//   RemoteWorkerNode — an rt::Node whose computation lives in a peer
//     process (bskd). process() pipelines up to credit_window tasks onto
//     the wire before insisting on a result, so the round-trip latency is
//     amortized across the window instead of paid per task; the result it
//     returns then belongs to the *oldest* in-flight task (Task::order
//     travels with it, so ordered collection is unaffected), and flush()
//     drains the tail after end of stream. The node owns the crash-recovery
//     copies of everything in flight (owns_recovery()): a peer crash is
//     recovered by draining the unacknowledged deque — exactly once,
//     because drains are destructive and the result path discards results
//     whose task a monitor already re-offered elsewhere. failed() reports
//     peer death — connection EOF or heartbeat silence — which
//     Farm::fail_crashed_workers() turns into WorkerFailureBean facts.
//
// Ordering note: SecureReq is sent on the same ordered stream as task
// frames, and the peer upgrades before reading anything sent after it — so
// "secured before any task reaches the worker" holds without blocking for
// the ack (which is absorbed whenever it arrives).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/resume_core.hpp"
#include "net/transport.hpp"
#include "support/thread_annotations.hpp"
#include "net/wire.hpp"
#include "rt/conduit.hpp"
#include "rt/node.hpp"

namespace bsk::net {

/// Link over a live transport: secure() upgrades the wire channel.
class RemoteLink final : public rt::Link {
 public:
  explicit RemoteLink(std::shared_ptr<Transport> tp) : tp_(std::move(tp)) {}

  void secure() override {
    if (tp_ && !tp_->secured()) {
      tp_->send(Frame{FrameType::SecureReq, {}});
      tp_->mark_secured();
    }
    rt::Link::secure();  // idempotent; charges the simulated handshake
  }

  /// Session resume re-targets the link at the replacement connection.
  void set_transport(std::shared_ptr<Transport> tp) { tp_ = std::move(tp); }

 private:
  std::shared_ptr<Transport> tp_ BSK_GUARDED_BY(tp_mu_);
};

/// Conduit whose queue is a peer process reached through a Transport.
class RemoteConduit final : public rt::Conduit {
 public:
  explicit RemoteConduit(std::shared_ptr<Transport> tp,
                         FrameType send_type = FrameType::TaskMsg,
                         FrameType recv_type = FrameType::ResultMsg)
      : tp_(std::move(tp)),
        send_type_(send_type),
        recv_type_(recv_type),
        link_(tp_) {}

  bool push(rt::Task t) override {
    link_.charge(t);
    pushed_.fetch_add(1, std::memory_order_relaxed);
    // Zero-copy: serialize straight into the transport's send buffer (the
    // TCP/shm backends skip the intermediate Frame entirely; decorators
    // fall back to a materialized frame via the base default).
    return tp_->send_serialized(send_type_, 1,
                                [&t](std::size_t, wire::Writer& w) {
                                  w.u64(0);  // unsequenced
                                  put_task(w, t);
                                });
  }

  bool try_push(rt::Task t) override { return push(std::move(t)); }

  /// Batched push: serialize the whole batch into the transport's send
  /// buffer under one lock and one I/O wakeup, so the frames leave in as
  /// few segments as the kernel allows.
  std::size_t push_n(std::vector<rt::Task>& ts) override {
    if (ts.empty()) return 0;
    for (rt::Task& t : ts) link_.charge(t);
    pushed_.fetch_add(ts.size(), std::memory_order_relaxed);
    const bool ok = tp_->send_serialized(
        send_type_, ts.size(), [&ts](std::size_t i, wire::Writer& w) {
          w.u64(0);  // unsequenced
          put_task(w, ts[i]);
        });
    return ok ? ts.size() : 0;
  }

  support::ChannelStatus pop(rt::Task& out) override {
    return pop_wall(out, -1.0);
  }

  support::ChannelStatus pop_for(rt::Task& out,
                                 support::SimDuration d) override {
    const auto wall = std::chrono::duration_cast<
        std::chrono::duration<double>>(support::Clock::to_wall(d));
    return pop_wall(out, wall.count());
  }

  /// pop with a *wall*-seconds timeout (< 0 = block until closed).
  support::ChannelStatus pop_wall(rt::Task& out, double wall_seconds);

  void close() override {
    tp_->send(Frame{FrameType::Shutdown, {}});
    tp_->close();
  }
  bool closed() const override { return tp_->closed(); }

  /// Wire depth is not observable; report the tasks we have committed.
  std::size_t size() const override { return 0; }
  std::size_t capacity() const override { return 1; }

  /// Tasks on the wire cannot be recalled.
  std::deque<rt::Task> steal_back(std::size_t) override { return {}; }

  rt::Link& link() override { return link_; }
  const rt::Link& link() const override { return link_; }

  Transport& transport() { return *tp_; }
  std::uint64_t pushed() const { return pushed_.load(); }

 private:
  std::shared_ptr<Transport> tp_ BSK_GUARDED_BY(tp_mu_);
  FrameType send_type_;
  FrameType recv_type_;
  RemoteLink link_;
  std::atomic<std::uint64_t> pushed_{0};
};

/// Tuning knobs of a remote worker node.
struct RemoteNodeOptions {
  /// How often the result wait wakes up to re-check peer liveness.
  double result_poll_wall_s = 0.25;
  /// Peer silence (no frames, heartbeats included) past this marks the
  /// worker failed. <= 0 disables the heartbeat detector (EOF still fires).
  double liveness_timeout_wall_s = 2.0;
  /// Tasks kept in flight on the wire (credit-based pipelining). 1
  /// degenerates to the strict round-trip-per-task protocol; larger windows
  /// overlap transfer with remote computation. Purely client-side: the peer
  /// executes its FIFO serially and results acknowledge in send order.
  std::size_t credit_window = 4;

  // ------------------------------------------------- reconnect & resume
  /// How long a sick connection (EOF or heartbeat silence) is treated as a
  /// *transient partition* before the node hard-fails and the farm replaces
  /// it. 0 disables resume entirely: any failure is a crash (PR-1
  /// semantics). Requires `reconnect` to be set.
  double reconnect_grace_wall_s = 0.0;
  /// Exponential-backoff reconnect pacing inside the grace window.
  double reconnect_backoff_wall_s = 0.05;
  double reconnect_backoff_max_wall_s = 0.5;
  /// Oldest unacked task is retransmitted after this silence (lost TaskMsg
  /// or lost ResultMsg; the peer deduplicates by sequence number).
  double retransmit_timeout_wall_s = 2.0;
  double handshake_timeout_wall_s = 2.0;
  /// Dial a replacement connection to the *same* endpoint. Returning
  /// nullptr means "still unreachable" (the node backs off and retries
  /// until the grace window closes).
  std::function<std::shared_ptr<Transport>()> reconnect;
  /// Post-handshake transport upgrade (the pool's colocated shm attach):
  /// given the fresh connection and the ack it handshook, return the
  /// transport the session should continue on — possibly the input
  /// unchanged. Runs before the replay, so replayed tasks ride the
  /// upgraded path.
  std::function<std::shared_ptr<Transport>(std::shared_ptr<Transport>,
                                           const HelloAck&)>
      upgrade;
  /// Handshake template for resume attempts (node kind, clock, heartbeat).
  Hello hello;
  /// Session identity from the initial HelloAck (resume presents it).
  std::uint64_t session = 0;
  std::uint32_t epoch = 0;
  /// Fired exactly once when the node gives up (grace expired or resume
  /// impossible) — the pool's quarantine bookkeeping hangs off this.
  std::function<void()> on_hard_fail;
};

/// Farm worker whose computation lives in a peer process.
///
/// Reliability protocol: every task carries a session-scoped sequence
/// number. The peer executes each sequence number at most once (duplicates
/// get the cached result resent), so this side may retransmit freely: the
/// oldest unacknowledged task is resent after retransmit_timeout, and a
/// successful resume replays everything unacknowledged. Results may arrive
/// out of order (reordering faults, resume replays) — they are buffered and
/// surfaced strictly oldest-first, duplicates suppressed, so delivery stays
/// exactly-once no matter what the wire does.
class RemoteWorkerNode final : public rt::Node {
 public:
  explicit RemoteWorkerNode(std::shared_ptr<Transport> tp,
                            RemoteNodeOptions opts = {})
      : tp_(std::move(tp)),
        opts_(std::move(opts)),
        link_(tp_),
        session_(opts_.session),
        epoch_(opts_.epoch) {}

  std::optional<rt::Task> process(rt::Task t) override;

  // Pipelining/recovery protocol (see rt::Node): this node keeps the
  // authoritative crash-recovery copy of every task accepted but not yet
  // answered by the peer.
  bool owns_recovery() const override { return true; }
  std::vector<rt::Task> drain_unacked() override;
  std::optional<rt::Task> flush() override;

  /// Tasks currently in flight on the wire (sent, no result yet).
  std::size_t in_flight() const {
    support::MutexLock lk(mu_);
    return unacked_.size();
  }

  /// Crash predicate the farm's failure detector polls. A sick connection
  /// inside the reconnect grace window is NOT a failure — reporting one
  /// would recruit a replacement for a worker about to resume.
  bool failed() const override;

  std::size_t secure_channels() override {
    auto tp = transport_ptr();
    if (tp->secured()) return 0;
    link_.secure();
    return 1;
  }

  void on_stop() override {
    auto tp = transport_ptr();
    if (!tp->closed()) {
      tp->send(Frame{FrameType::Shutdown, {}});
      tp->close();
    }
  }

  Transport& transport() { return *transport_ptr(); }

  // ------------------------------------------------------ chaos telemetry
  std::uint64_t resumes() const { return resumes_.load(); }
  std::uint64_t retransmits() const { return retransmits_.load(); }
  std::uint64_t duplicates_suppressed() const { return dups_suppressed_.load(); }
  std::uint64_t session() const { return session_.load(); }
  std::uint32_t epoch() const { return epoch_.load(); }
  /// True once the peer announced a graceful departure (Leave frame). The
  /// node then fails fast — no reconnect attempts against a daemon that
  /// told us it is gone, and no on_hard_fail/quarantine penalty for an
  /// orderly goodbye.
  bool peer_left() const { return peer_left_.load(); }

 private:
  /// Wait for (and deliver) the result of the oldest in-flight task.
  /// nullopt when the peer filtered that task, the connection hard-failed,
  /// or a monitor drained the recovery deque out from under us (the result
  /// is then discarded: its task is being re-executed elsewhere).
  std::optional<rt::Task> await_result();

  /// Reconnect-with-backoff inside the grace window, resume the session,
  /// and replay everything unacked. False once the window closes.
  bool try_resume();

  std::shared_ptr<Transport> transport_ptr() const {
    support::MutexLock lk(tp_mu_);
    return tp_;
  }
  bool transport_sick(const Transport& tp) const {
    return tp.closed() || (opts_.liveness_timeout_wall_s > 0.0 &&
                           tp.idle_seconds() > opts_.liveness_timeout_wall_s);
  }
  bool resumable() const {
    return opts_.reconnect && opts_.reconnect_grace_wall_s > 0.0 &&
           !peer_left_.load(std::memory_order_relaxed);
  }
  /// Terminal failure: close, fire on_hard_fail once.
  void mark_hard_failed() const;

  mutable support::Mutex tp_mu_{"RemoteWorkerNode.transport"};  ///< tp_ swap on resume
  std::shared_ptr<Transport> tp_ BSK_GUARDED_BY(tp_mu_);
  RemoteNodeOptions opts_;
  RemoteLink link_;

  mutable std::atomic<bool> hard_failed_{false};
  mutable std::atomic<bool> peer_left_{false};
  /// Wall time the connection was first seen sick (-1 = healthy). The grace
  /// window is measured from here by both the worker thread (resume loop)
  /// and the farm's failure detector (failed()).
  mutable std::atomic<double> down_since_{-1.0};

  /// Recovery copies of sent-but-unanswered tasks, oldest first, plus
  /// results that arrived ahead of the oldest (reordered or replayed).
  /// Incoming results are placed by resume_core's classify_result — the
  /// same pure function the model checker drives.
  mutable support::Mutex mu_{"RemoteWorkerNode.pending"};
  std::deque<PendingTask> unacked_ BSK_GUARDED_BY(mu_);
  std::map<std::uint64_t, rt::Task> ready_ BSK_GUARDED_BY(mu_);
  std::uint64_t next_seq_ BSK_GUARDED_BY(mu_) = 0;
  std::uint64_t last_acked_ BSK_GUARDED_BY(mu_) = 0;

  std::atomic<std::uint64_t> session_{0};
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint64_t> resumes_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dups_suppressed_{0};
};

// ------------------------------------------------------------- handshake

/// Client side of the connection handshake: send Hello, await HelloAck.
/// False on timeout, version mismatch, or refusal (transport is closed).
bool client_handshake(Transport& tp, const Hello& hello,
                      double timeout_wall_s, HelloAck* ack_out = nullptr);

/// Server side: await Hello, validate magic/version, reply HelloAck.
/// False on timeout or a malformed/incompatible Hello (refusal is sent).
bool server_handshake(Transport& tp, double timeout_wall_s,
                      std::uint64_t session, Hello* hello_out = nullptr);

}  // namespace bsk::net
