#include "net/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.hpp"

namespace bsk::net {

namespace {

struct EpollObs {
  obs::Counter& accepts = obs::counter("bsk_net_epoll_accepts_total",
                                       "connections accepted by epoll loops");
  obs::Counter& wakeups = obs::counter("bsk_net_epoll_wakeups_total",
                                       "epoll_wait returns with events");
  obs::Counter& frames_rx = obs::counter(
      "bsk_net_epoll_frames_received_total",
      "non-heartbeat frames decoded by epoll loops");
  obs::Counter& frames_tx = obs::counter("bsk_net_epoll_frames_sent_total",
                                         "frames queued by epoll servers");
  // The process-wide dataplane aggregates (shared with the transports).
  obs::Counter& net_tx =
      obs::counter("bsk_net_frames_sent_total", "frames written to the wire");
  obs::Counter& net_rx = obs::counter("bsk_net_frames_received_total",
                                      "non-heartbeat frames decoded");
  obs::Counter& decode_errors = obs::counter(
      "bsk_net_decode_errors_total",
      "connections killed by an unrecoverable framing error");
  obs::Counter& crc_errors = obs::counter(
      "bsk_net_crc_errors_total", "frames dropped for checksum mismatch");
  obs::Counter& accept_backoffs = obs::counter(
      "bsk_net_epoll_accept_backoffs_total",
      "accepts deferred because the process ran out of file descriptors");
};

EpollObs& epoll_obs() {
  static EpollObs o;
  return o;
}

constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;

}  // namespace

EpollServer::EpollServer(Handler& handler, EpollOptions opts)
    : handler_(handler), opts_(opts) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) return;

  lfd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (lfd_ < 0) return;
  int one = 1;
  ::setsockopt(lfd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(lfd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(lfd_, opts_.backlog) != 0) {
    ::close(lfd_);
    lfd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(lfd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0)
    port_ = ntohs(bound.sin_port);

  wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, lfd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
}

void EpollServer::start() {
  if (!valid() || loop_.joinable() || stopping_.load()) return;
  loop_ = std::jthread([this](const std::stop_token& st) { loop(st); });
}

EpollServer::~EpollServer() { stop(); }

void EpollServer::wake() {
  if (wakefd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakefd_, &one, sizeof one);
  }
}

void EpollServer::stop() {
  if (stopping_.exchange(true)) {
    if (loop_.joinable()) loop_.join();
    return;
  }
  loop_.request_stop();
  wake();
  if (loop_.joinable()) loop_.join();

  // Loop is gone: close every connection under its own mutex so in-flight
  // writer calls observe fd == -1 instead of racing a closed descriptor.
  std::vector<std::shared_ptr<Conn>> all;
  {
    support::MutexLock lk(conns_mu_);
    for (auto& [id, c] : conns_) all.push_back(c);
    conns_.clear();
  }
  for (auto& c : all) {
    support::MutexLock lk(c->mu);
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  if (lfd_ >= 0) {
    ::close(lfd_);
    lfd_ = -1;
  }
  if (wakefd_ >= 0) {
    ::close(wakefd_);
    wakefd_ = -1;
  }
  if (epfd_ >= 0) {
    ::close(epfd_);
    epfd_ = -1;
  }
}

std::shared_ptr<EpollServer::Conn> EpollServer::find(ConnId c) const {
  support::MutexLock lk(conns_mu_);
  auto it = conns_.find(c);
  return it == conns_.end() ? nullptr : it->second;
}

std::size_t EpollServer::connections() const {
  support::MutexLock lk(conns_mu_);
  return conns_.size();
}

// ------------------------------------------------------------------- sends

bool EpollServer::flush_locked(Conn& conn) {
  // Opportunistic scatter/gather flush; a short write leaves the tail in
  // the queue for the next EPOLLOUT edge. On a hard error the fd is shut
  // down (never closed here — only the loop closes fds) so the loop reaps
  // the connection via EPOLLHUP.
  while (!conn.out.empty() && conn.fd >= 0 && !conn.broken) {
    iovec iov[SendQueue::kMaxIov];
    const std::size_t cnt = conn.out.gather(iov, SendQueue::kMaxIov);
    std::size_t gathered = 0;
    for (std::size_t i = 0; i < cnt; ++i) gathered += iov[i].iov_len;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.consume(static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < gathered) return true;  // short write
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    conn.broken = true;
    ::shutdown(conn.fd, SHUT_RDWR);
    return false;
  }
  return !conn.broken;
}

bool EpollServer::send(ConnId c, const Frame& f) {
  auto conn = find(c);
  if (!conn) return false;
  support::MutexLock lk(conn->mu);
  if (conn->fd < 0 || conn->broken || conn->want_close) return false;
  conn->out.append_frame(f);
  epoll_obs().frames_tx.inc();
  epoll_obs().net_tx.inc();
  return flush_locked(*conn);
}

bool EpollServer::send_serialized(ConnId c, FrameType type, std::size_t n,
                                 const Transport::SerializeFn& emit) {
  auto conn = find(c);
  if (!conn) return false;
  support::MutexLock lk(conn->mu);
  if (conn->fd < 0 || conn->broken || conn->want_close) return false;
  for (std::size_t i = 0; i < n; ++i)
    conn->out.build_frame(type, [&](wire::Writer& w) { emit(i, w); });
  epoll_obs().frames_tx.inc(n);
  epoll_obs().net_tx.inc(n);
  return flush_locked(*conn);
}

void EpollServer::close_conn(ConnId c) {
  auto conn = find(c);
  if (!conn) return;
  {
    support::MutexLock lk(conn->mu);
    if (conn->fd < 0) return;
    conn->want_close = true;
    if (conn->close_deadline < 0.0) conn->close_deadline = wall_now() + 1.0;
    flush_locked(*conn);
  }
  wake();  // let the loop reap once the queue drains (or the grace expires)
}

void EpollServer::set_heartbeat(ConnId c, double period_wall_s) {
  auto conn = find(c);
  if (!conn) return;
  {
    support::MutexLock lk(conn->mu);
    conn->hb_period = period_wall_s;
    conn->hb_next = period_wall_s > 0.0 ? wall_now() + period_wall_s : 0.0;
  }
  wake();  // re-evaluate the loop's timer horizon
}

// -------------------------------------------------------------------- loop

void EpollServer::accept_ready() {
  if (accept_backoff_until_ > 0.0 && wall_now() < accept_backoff_until_)
    return;  // still inside the fd-exhaustion backoff window
  accept_backoff_until_ = 0.0;
  for (;;) {
    const int cfd =
        ::accept4(lfd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds. An edge-triggered listener that just returns here
        // never gets another edge for the backlog it failed to drain, and
        // one that keeps looping spins at 100% CPU accepting nothing —
        // park the listener and let the timer pass retry once the window
        // (or a connection slot) opens.
        accept_backoff_until_ = wall_now() + opts_.accept_backoff_wall_s;
        accept_backoffs_.fetch_add(1, std::memory_order_relaxed);
        epoll_obs().accept_backoffs.inc();
        if (!accept_backoff_logged_) {
          accept_backoff_logged_ = true;
          std::fprintf(stderr,
                       "bsk.epoll: accept failed (%s); backing off %.0f ms "
                       "between retries (raise RLIMIT_NOFILE?)\n",
                       std::strerror(errno),
                       opts_.accept_backoff_wall_s * 1e3);
        }
        return;
      }
      return;  // EAGAIN or transient accept failure: wait for the next edge
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Conn>();
    conn->raw_fd = cfd;
    conn->opened_at = wall_now();
    {
      support::MutexLock lk(conn->mu);
      conn->fd = cfd;
    }
    conn->decoder = FrameDecoder(opts_.max_frame);
    ConnId id;
    {
      support::MutexLock lk(conns_mu_);
      id = next_id_++;
      conn->id = id;
      conns_.emplace(id, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      reap(conn);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    epoll_obs().accepts.inc();
  }
}

void EpollServer::read_ready(const std::shared_ptr<Conn>& conn) {
  {
    support::MutexLock lk(conn->mu);
    if (conn->fd < 0) return;  // reaped earlier in this batch
  }
  std::uint8_t rbuf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn->raw_fd, rbuf, sizeof rbuf);
    if (n > 0) {
      conn->decoder.feed(rbuf, static_cast<std::size_t>(n));
      while (auto f = conn->decoder.next()) {
        if (f->type == FrameType::Heartbeat) continue;
        if (!conn->got_hello) {
          // First real frame must be the handshake; anything else is not a
          // bsk peer and is dropped without ceremony.
          auto h = parse_hello(*f);
          if (f->type != FrameType::Hello || !h) {
            reap(conn);
            return;
          }
          conn->got_hello = true;
          epoll_obs().frames_rx.inc();
          epoll_obs().net_rx.inc();
          handler_.on_hello(conn->id, *h);
          continue;
        }
        epoll_obs().frames_rx.inc();
        epoll_obs().net_rx.inc();
        handler_.on_frame(conn->id, std::move(*f));
      }
      if (conn->decoder.error() != DecodeError::None) {
        if (conn->decoder.error() == DecodeError::BadCrc)
          epoll_obs().crc_errors.inc();
        epoll_obs().decode_errors.inc();
        reap(conn);
        return;
      }
      continue;
    }
    if (n == 0) {  // EOF
      reap(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    reap(conn);  // hard socket error
    return;
  }
}

void EpollServer::write_ready(const std::shared_ptr<Conn>& conn) {
  bool dead;
  {
    support::MutexLock lk(conn->mu);
    if (conn->fd < 0) return;
    flush_locked(*conn);
    dead = conn->broken || (conn->want_close && conn->out.empty());
  }
  if (dead) reap(conn);
}

void EpollServer::timer_pass(double now) {
  if (accept_backoff_until_ > 0.0 && now >= accept_backoff_until_) {
    accept_backoff_until_ = 0.0;
    accept_ready();  // retry the backlog the exhausted accept left queued
  }
  std::vector<std::shared_ptr<Conn>> snapshot;
  {
    support::MutexLock lk(conns_mu_);
    snapshot.reserve(conns_.size());
    for (auto& [id, c] : conns_) snapshot.push_back(c);
  }
  for (auto& conn : snapshot) {
    bool dead = false;
    {
      support::MutexLock lk(conn->mu);
      if (conn->fd < 0) continue;
      if (conn->hb_period > 0.0 && now >= conn->hb_next) {
        const std::uint64_t seq = conn->hb_seq++;
        conn->out.build_frame(FrameType::Heartbeat, [&](wire::Writer& w) {
          w.u64(seq);
          w.f64(now);
        });
        conn->hb_next = now + conn->hb_period;
        flush_locked(*conn);
      }
      dead = conn->broken ||
             (conn->want_close &&
              (conn->out.empty() || now >= conn->close_deadline));
    }
    if (!dead && !conn->got_hello &&
        now - conn->opened_at > opts_.handshake_timeout_wall_s)
      dead = true;  // never spoke: not a bsk peer
    if (dead) reap(conn);
  }
}

void EpollServer::reap(const std::shared_ptr<Conn>& conn) {
  {
    support::MutexLock lk(conn->mu);
    if (conn->fd < 0) return;  // already reaped
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }
  {
    support::MutexLock lk(conns_mu_);
    conns_.erase(conn->id);
  }
  if (conn->got_hello) handler_.on_closed(conn->id);
}

void EpollServer::loop(const std::stop_token& st) {
  epoll_event evs[128];
  while (!st.stop_requested()) {
    // Timer horizon: the nearest heartbeat or close deadline, clamped to
    // [1, 100] ms so closed-flag and handshake-timeout checks stay prompt.
    int timeout_ms = 100;
    {
      const double now = wall_now();
      support::MutexLock lk(conns_mu_);
      for (auto& [id, c] : conns_) {
        support::MutexLock cl(c->mu);
        if (c->hb_period > 0.0) {
          const int ms = static_cast<int>((c->hb_next - now) * 1000.0);
          timeout_ms = std::max(1, std::min(timeout_ms, ms));
        }
        if (c->want_close) timeout_ms = std::min(timeout_ms, 10);
      }
    }
    if (accept_backoff_until_ > 0.0) timeout_ms = std::min(timeout_ms, 10);

    const int rc = ::epoll_wait(epfd_, evs, 128, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc > 0) epoll_obs().wakeups.inc();

    for (int i = 0; i < rc; ++i) {
      const std::uint64_t tag = evs[i].data.u64;
      if (tag == kListenerTag) {
        accept_ready();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drain;
        while (::read(wakefd_, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      auto conn = find(tag);
      if (!conn) continue;  // reaped earlier in this batch
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
        // Drain any bytes still queued in the kernel before closing.
        read_ready(conn);
        reap(conn);
        continue;
      }
      if (evs[i].events & EPOLLOUT) write_ready(conn);
      if (evs[i].events & (EPOLLIN | EPOLLRDHUP)) read_ready(conn);
    }

    timer_pass(wall_now());
  }
}

}  // namespace bsk::net
