#pragma once
// ABC over the wire: am::AutonomicManager drives a skeleton in another
// process without knowing it.
//
// RemoteAbc is the client half — an am::Abc whose sense() and actuators are
// RPCs over a Transport (SensorReq/SensorRep, ActReq/ActRep). A manager
// built against the Abc interface monitors and reconfigures the remote
// skeleton unchanged.
//
// The two-phase secure-before-commit protocol survives the process split:
// the *local* commit gate (installed by the multi-concern GeneralManager)
// examines the AddWorker intent first — remote workers sit across a
// process/machine boundary, so the intent is presented as target-untrusted
// by default — and its require_secure annotation travels inside the
// ActRequest. AbcServer, the server half, re-injects that annotation
// through a transient commit gate on the wrapped Abc, so the remote farm
// instantiates the worker with its links (and its node's own wire channel,
// via Node::secure_channels) secured before any task can reach it.
//
// SecureLinks doubles as the control channel's own upgrade: the server
// secures the wrapped skeleton's links and both ends mark the transport
// secured — Link::secure() semantics mapped onto a live connection.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "am/abc.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "support/thread_annotations.hpp"

namespace bsk::net {

struct RemoteAbcOptions {
  double rpc_timeout_wall_s = 5.0;
  /// Present remote AddWorker intents as target-untrusted to the local
  /// commit gate (a remote worker crosses a trust boundary by default).
  bool assume_remote_untrusted = true;
};

/// Client-side Abc: every call is a synchronous RPC on the transport.
class RemoteAbc final : public am::Abc {
 public:
  explicit RemoteAbc(std::shared_ptr<Transport> tp, RemoteAbcOptions opts = {})
      : tp_(std::move(tp)), opts_(opts) {}

  /// Snapshot the remote skeleton. On timeout or a dead connection the
  /// snapshot comes back with valid=false — the manager treats it as a
  /// sensor blackout, exactly like a local reconfiguration window.
  am::Sensors sense() override;

  bool add_worker() override;
  bool remove_worker() override;
  std::size_t rebalance() override;
  bool set_rate(double tasks_per_s) override;
  std::size_t secure_links() override;

  bool connected() const { return !tp_->closed(); }
  Transport& transport() { return *tp_; }

 private:
  /// Round-trip one actuator command. Returns the reply, or nullopt on
  /// timeout/disconnect.
  std::optional<ActReply> call(ActRequest req);

  std::shared_ptr<Transport> tp_;
  RemoteAbcOptions opts_;
  support::Mutex rpc_mu_{"RemoteAbc.rpc"};  // one RPC in flight at a time
  std::uint32_t next_seq_ BSK_GUARDED_BY(rpc_mu_) = 1;
};

/// Server half: owns one control-channel transport and executes requests
/// against a wrapped Abc. Installs transient commit gates to carry the
/// client's require_secure annotation, so it must own the target's gate for
/// its lifetime (compose multi-concern gates on the client side).
class AbcServer {
 public:
  AbcServer(am::Abc& target, std::shared_ptr<Transport> tp)
      : target_(target), tp_(std::move(tp)) {}
  ~AbcServer() { stop(); }

  AbcServer(const AbcServer&) = delete;
  AbcServer& operator=(const AbcServer&) = delete;

  /// Serve until the connection closes (blocking).
  void serve();

  /// Serve on a background thread.
  void start();

  /// Close the channel and join the serving thread.
  void stop();

  std::uint64_t requests_served() const { return served_.load(); }

 private:
  void handle(const Frame& f);

  am::Abc& target_;
  std::shared_ptr<Transport> tp_;
  std::atomic<std::uint64_t> served_{0};
  std::jthread thread_;
};

}  // namespace bsk::net
