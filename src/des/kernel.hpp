#pragma once
// Discrete-event simulation kernel.
//
// The threaded runtime (bsk::rt) replays the paper's testbed at laptop
// scale; this kernel exists for the scale the paper *motivates* but never
// runs — grids/clouds with hundreds to thousands of workers — where real
// threads are impossible and determinism is essential for ablations.
// Events are ordered by (time, insertion sequence), so identical inputs
// yield identical traces on every run.

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

namespace bsk::des {

/// Simulation time, seconds.
using DesTime = double;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

/// Deterministic single-threaded event scheduler.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedule `fn` at absolute time `t` (must be >= now()). Returns an id
  /// usable with cancel().
  EventId schedule(DesTime t, Action fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{t, id, std::move(fn)});
    return id;
  }

  /// Schedule `fn` after a delay from now.
  EventId schedule_in(DesTime delay, Action fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event (no-op if already fired or unknown).
  void cancel(EventId id) { cancelled_.push_back(id); }

  /// Execute the next event. Returns false when the queue is empty.
  bool step() {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      if (is_cancelled(e.id)) continue;
      now_ = e.t;
      ++executed_;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run until the queue drains or simulated time would exceed `t_end`.
  void run_until(DesTime t_end = std::numeric_limits<DesTime>::infinity()) {
    while (!heap_.empty()) {
      if (heap_.top().t > t_end) break;
      step();
    }
    if (t_end != std::numeric_limits<DesTime>::infinity() && now_ < t_end &&
        heap_.empty())
      now_ = t_end;
  }

  /// Run everything.
  void run() { run_until(); }

  DesTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    DesTime t;
    EventId id;
    Action fn;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  bool is_cancelled(EventId id) {
    for (auto it = cancelled_.begin(); it != cancelled_.end(); ++it) {
      if (*it == id) {
        cancelled_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<EventId> cancelled_;
  DesTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace bsk::des
