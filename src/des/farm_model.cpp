#include "des/farm_model.hpp"

#include "am/builtin_rules.hpp"
#include "rules/parser.hpp"

#include <cmath>

namespace bsk::des {

// ------------------------------------------------------------------ farm

DesFarm::DesFarm(Simulator& sim, DesFarmParams p)
    : sim_(sim),
      p_(p),
      rng_(p.seed),
      target_workers_(p.initial_workers ? p.initial_workers : 1),
      arrivals_(p.window_s),
      departures_(p.window_s) {
  history_.emplace_back(sim_.now(), target_workers_);
}

double DesFarm::sample_service() {
  return p_.exponential_service ? rng_.exponential(p_.service_s)
                                : p_.service_s;
}

void DesFarm::offer() {
  arrivals_.record(sim_.now());
  ++queue_;
  try_start();
}

void DesFarm::try_start() {
  while (queue_ > 0 && busy_ < target_workers_) {
    --queue_;
    ++busy_;
    sim_.schedule_in(sample_service(), [this] { complete_one(); });
  }
}

void DesFarm::complete_one() {
  --busy_;
  departures_.record(sim_.now());
  if (on_departure) on_departure();
  try_start();
}

void DesFarm::add_workers(std::size_t n) {
  target_workers_ = std::min(p_.max_workers, target_workers_ + n);
  history_.emplace_back(sim_.now(), target_workers_);
  try_start();
}

void DesFarm::remove_workers(std::size_t n) {
  target_workers_ = target_workers_ > n ? target_workers_ - n : 1;
  history_.emplace_back(sim_.now(), target_workers_);
  // Busy workers above the target finish their task and then idle out
  // naturally: try_start() never dispatches beyond target_workers_.
}

// ---------------------------------------------------------------- source

DesSource::DesSource(Simulator& sim, double rate, std::uint64_t count,
                     std::function<void()> deliver)
    : sim_(sim),
      rate_(rate > 0 ? rate : 1e-9),
      count_(count),
      deliver_(std::move(deliver)) {}

void DesSource::start() {
  if (count_ > 0) sim_.schedule_in(1.0 / rate_, [this] { emit(); });
}

void DesSource::set_rate(double r) {
  if (r > 0) rate_ = r;
}

void DesSource::emit() {
  if (emitted_ >= count_) return;
  ++emitted_;
  deliver_();
  if (emitted_ < count_) sim_.schedule_in(1.0 / rate_, [this] { emit(); });
}

// --------------------------------------------------------------- manager

/// Adapter mapping rule-fired operations onto DesFarm actuators.
class DesFarmManager::Sink final : public rules::OperationSink {
 public:
  Sink(DesFarmManager& m) : m_(m) {}

  void fire_operation(const std::string& op, const std::string& data) override {
    if (op == "ADD_EXECUTOR") {
      std::size_t n = m_.p_.add_per_step;
      if (const auto c = m_.consts_.get(data)) n = static_cast<std::size_t>(*c);
      m_.farm_.add_workers(n);
      ++m_.adds_;
      m_.suppressed_until_ = m_.sim_.now() + m_.p_.cooldown_s;
    } else if (op == "REMOVE_EXECUTOR") {
      m_.farm_.remove_workers(1);
      ++m_.removes_;
      m_.suppressed_until_ = m_.sim_.now() + m_.p_.cooldown_s;
    } else if (op == "RAISE_VIOLATION") {
      ++m_.violations_;
      if (m_.on_violation) m_.on_violation(data);
    }
    // BALANCE_LOAD is a no-op: the central-queue model is always balanced.
  }

 private:
  DesFarmManager& m_;
};

DesFarmManager::DesFarmManager(Simulator& sim, DesFarm& farm,
                               DesManagerParams p)
    : sim_(sim), farm_(farm), p_(p) {
  for (rules::Rule& r : rules::parse_rules(am::farm_rules()))
    engine_.add_rule(std::move(r));
  consts_.set("FARM_LOW_PERF_LEVEL", p_.contract_lo);
  consts_.set("FARM_HIGH_PERF_LEVEL",
              std::isinf(p_.contract_hi) ? 1e30 : p_.contract_hi);
  consts_.set("FARM_MIN_NUM_WORKERS", static_cast<double>(p_.min_workers));
  consts_.set("FARM_MAX_NUM_WORKERS", static_cast<double>(p_.max_workers));
  consts_.set("FARM_MAX_UNBALANCE", 1e30);  // central queue: never unbalanced
  consts_.set("FARM_ADD_WORKERS", static_cast<double>(p_.add_per_step));
}

void DesFarmManager::set_contract(double lo, double hi) {
  p_.contract_lo = lo;
  p_.contract_hi = hi;
  consts_.set("FARM_LOW_PERF_LEVEL", lo);
  consts_.set("FARM_HIGH_PERF_LEVEL", std::isinf(hi) ? 1e30 : hi);
}

void DesFarmManager::start() {
  running_ = true;
  suppressed_until_ = sim_.now() + p_.warmup_s;
  sim_.schedule_in(p_.period_s, [this] { cycle(); });
}

void DesFarmManager::stop() { running_ = false; }

void DesFarmManager::cycle() {
  if (!running_) return;
  ++cycles_;

  const double dep = farm_.departure_rate();
  const double arr = farm_.arrival_rate();
  wm_.set("ArrivalRateBean", arr);
  wm_.set("DepartureRateBean", dep);
  wm_.set("NumWorkerBean", static_cast<double>(farm_.workers()));
  wm_.set("QueueVarianceBean", 0.0);
  wm_.set("QuequeVarianceBean", 0.0);

  if (converged_at_ < 0.0 && dep >= p_.contract_lo && dep <= p_.contract_hi)
    converged_at_ = sim_.now();

  if (sim_.now() >= suppressed_until_) {
    Sink sink(*this);
    engine_.run_cycle(wm_, consts_, sink);
  }
  sim_.schedule_in(p_.period_s, [this] { cycle(); });
}

}  // namespace bsk::des
