#include "des/hierarchy.hpp"

#include <memory>
#include <numeric>

namespace bsk::des {

namespace {

/// Smooth weighted round-robin: deterministic, proportional in the limit.
class WeightedDispatcher {
 public:
  explicit WeightedDispatcher(std::size_t n)
      : weights_(n, 1.0), credits_(n, 0.0) {}

  void set_weights(const std::vector<double>& w) {
    for (std::size_t i = 0; i < weights_.size() && i < w.size(); ++i)
      weights_[i] = w[i] > 1e-9 ? w[i] : 1e-9;
  }

  std::size_t pick() {
    const double total =
        std::accumulate(weights_.begin(), weights_.end(), 0.0);
    std::size_t best = 0;
    for (std::size_t i = 0; i < credits_.size(); ++i) {
      credits_[i] += weights_[i];
      if (credits_[i] > credits_[best]) best = i;
    }
    credits_[best] -= total;
    return best;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> credits_;
};

}  // namespace

HierResult run_hierarchy(const HierConfig& cfg) {
  Simulator sim;
  const std::size_t g = cfg.groups ? cfg.groups : 1;

  std::vector<double> speeds = cfg.group_speeds;
  if (speeds.size() != g) speeds.assign(g, 1.0);

  std::vector<std::unique_ptr<DesFarm>> farms;
  std::vector<std::unique_ptr<DesFarmManager>> managers;
  std::vector<double> shares(g, cfg.contract_lo / static_cast<double>(g));

  for (std::size_t i = 0; i < g; ++i) {
    DesFarmParams fp;
    // A faster group serves each task proportionally quicker.
    fp.service_s = cfg.service_s / speeds[i];
    fp.exponential_service = cfg.exponential_service;
    fp.initial_workers = 1;
    fp.max_workers = cfg.max_workers / g ? cfg.max_workers / g : 1;
    fp.window_s = cfg.window_s;
    fp.seed = cfg.seed + i;
    farms.push_back(std::make_unique<DesFarm>(sim, fp));

    DesManagerParams mp;
    mp.period_s = cfg.manager_period_s;
    // The farm split of P_spl: each group holds a 1/g share of the SLA.
    mp.contract_lo = shares[i];
    mp.contract_hi = cfg.contract_hi >= 1e30
                         ? cfg.contract_hi
                         : cfg.contract_hi / static_cast<double>(g);
    mp.max_workers = fp.max_workers;
    mp.add_per_step = cfg.add_per_step;
    mp.cooldown_s = cfg.cooldown_s;
    mp.warmup_s = cfg.warmup_s;
    managers.push_back(
        std::make_unique<DesFarmManager>(sim, *farms.back(), mp));
  }

  HierResult result;
  std::uint64_t completed = 0;
  for (auto& f : farms)
    f->on_departure = [&completed, &result, &sim, &cfg] {
      ++completed;
      if (completed == cfg.tasks) result.finished_at = sim.now();
    };

  // Top-level emitter: weighted round-robin over the groups.
  WeightedDispatcher dispatcher(g);
  DesSource source(sim, cfg.arrival_rate, cfg.tasks,
                   [&] { farms[dispatcher.pick()]->offer(); });

  // Top-level monitor: samples the aggregate rate for the whole run.
  // Convergence = three consecutive in-SLA samples (transient spikes don't
  // count); sla_fraction = in-SLA share of all post-warmup samples.
  int in_sla_streak = 0;
  std::uint64_t samples = 0;
  std::uint64_t samples_in_sla = 0;
  std::function<void()> top_cycle = [&] {
    double agg = 0.0;
    for (auto& f : farms) agg += f->departure_rate();
    const bool in_sla = agg >= cfg.contract_lo && agg <= cfg.contract_hi;
    if (sim.now() >= cfg.warmup_s) {
      ++samples;
      if (in_sla) ++samples_in_sla;
    }
    if (in_sla) {
      if (++in_sla_streak >= 3 && result.converged_at < 0.0)
        result.converged_at = sim.now();
    } else {
      in_sla_streak = 0;
    }
    if (completed < cfg.tasks)
      sim.schedule_in(cfg.manager_period_s, top_cycle);
  };

  // Dynamic P_spl: groups saturated below their share keep only their
  // delivered capacity; the deficit shifts to the others (weights follow).
  std::function<void()> renegotiate_cycle = [&] {
    double deficit = 0.0;
    std::vector<bool> saturated(g, false);
    for (std::size_t i = 0; i < g; ++i) {
      const double rate = farms[i]->departure_rate();
      if (farms[i]->workers() >= farms[i]->max_workers() &&
          rate < shares[i] * 0.95) {
        saturated[i] = true;
        deficit += shares[i] - rate;
        shares[i] = rate;
      }
    }
    if (deficit > 1e-9) {
      double open_total = 0.0;
      for (std::size_t i = 0; i < g; ++i)
        if (!saturated[i]) open_total += shares[i];
      if (open_total > 1e-9) {
        for (std::size_t i = 0; i < g; ++i)
          if (!saturated[i]) shares[i] += deficit * shares[i] / open_total;
        for (std::size_t i = 0; i < g; ++i)
          managers[i]->set_contract(shares[i],
                                    managers[i]->contract_hi());
        dispatcher.set_weights(shares);
        ++result.renegotiations;
      }
    }
    sim.schedule_in(cfg.renegotiate_period_s, renegotiate_cycle);
  };

  source.start();
  for (auto& m : managers) m->start();
  sim.schedule_in(cfg.manager_period_s, top_cycle);
  if (cfg.renegotiate)
    sim.schedule_in(cfg.renegotiate_period_s, renegotiate_cycle);

  const DesTime horizon = 1e7;
  while (completed < cfg.tasks && sim.now() < horizon) {
    if (!sim.step()) break;
  }
  for (auto& m : managers) m->stop();

  result.completed = completed;
  if (samples > 0)
    result.sla_fraction =
        static_cast<double>(samples_in_sla) / static_cast<double>(samples);
  for (auto& m : managers) {
    result.manager_cycles += m->cycles();
    result.adds += m->adds();
    result.violations += m->violations();
  }
  for (auto& f : farms) result.final_workers += f->workers();
  result.events_executed = sim.executed();
  return result;
}

}  // namespace bsk::des
