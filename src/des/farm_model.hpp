#pragma once
// DES models of the behavioural-skeleton patterns and their managers.
//
// The models share the *policy* layer with the threaded runtime: a
// DesFarmManager owns a real rules::Engine loaded with the same Fig. 5
// text (am::farm_rules()), fed with the same beans; only the mechanisms
// differ (event-driven queueing model instead of threads). This lets the
// scale ablations (bench/des_scale) claim they exercise the paper's
// policies, not a reimplementation of them.
//
// Model shape: a farm is a central-queue multi-server station (the
// on-demand scheduling limit of the runtime farm); a source is a
// constant-rate arrival process with a retunable rate (the incRate/decRate
// actuator); managers are periodic events.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "des/kernel.hpp"
#include "rules/engine.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace bsk::des {

/// Sliding-window rate over DES time (explicit timestamps).
class WindowRate {
 public:
  explicit WindowRate(double window_s) : window_(window_s) {}

  void record(DesTime t) {
    stamps_.push_back(t);
    ++total_;
    const DesTime lo = t - window_;
    while (!stamps_.empty() && stamps_.front() < lo) stamps_.pop_front();
  }

  double rate(DesTime now) const {
    const DesTime lo = now - window_;
    std::size_t n = 0;
    for (auto it = stamps_.rbegin(); it != stamps_.rend() && *it >= lo; ++it)
      ++n;
    return window_ > 0 ? static_cast<double>(n) / window_ : 0.0;
  }

  std::uint64_t total() const { return total_; }

 private:
  double window_;
  std::deque<DesTime> stamps_;
  std::uint64_t total_ = 0;
};

// ------------------------------------------------------------------ farm

struct DesFarmParams {
  double service_s = 1.0;          ///< per-task demand
  bool exponential_service = false;
  std::size_t initial_workers = 1;
  std::size_t max_workers = 1 << 20;
  double window_s = 10.0;
  std::uint64_t seed = 1;
};

/// Central-queue multi-server farm model with live resize.
class DesFarm {
 public:
  DesFarm(Simulator& sim, DesFarmParams p);

  /// Offer one task at the current simulation time.
  void offer();

  /// Actuators (mirroring rt::Farm's reconfiguration surface).
  void add_workers(std::size_t n);
  void remove_workers(std::size_t n);  ///< lazy: busy workers finish first

  /// Sensors.
  std::size_t workers() const { return target_workers_; }
  std::size_t max_workers() const { return p_.max_workers; }
  std::size_t queued() const { return queue_; }
  double arrival_rate() const { return arrivals_.rate(sim_.now()); }
  double departure_rate() const { return departures_.rate(sim_.now()); }
  std::uint64_t completed() const { return departures_.total(); }
  std::uint64_t offered() const { return arrivals_.total(); }

  /// Hook invoked at each task completion (wire stages together).
  std::function<void()> on_departure;

  /// History of (time, worker count) at every resize.
  const std::vector<std::pair<DesTime, std::size_t>>& worker_history() const {
    return history_;
  }

 private:
  void try_start();      // dispatch queued tasks onto idle workers
  void complete_one();   // service completion event

  double sample_service();

  Simulator& sim_;
  DesFarmParams p_;
  support::Rng rng_;
  std::size_t target_workers_;
  std::size_t busy_ = 0;
  std::size_t queue_ = 0;
  WindowRate arrivals_;
  WindowRate departures_;
  std::vector<std::pair<DesTime, std::size_t>> history_;
};

// ---------------------------------------------------------------- source

/// Constant-rate arrival process with a retunable rate; feeds a callback.
class DesSource {
 public:
  DesSource(Simulator& sim, double rate, std::uint64_t count,
            std::function<void()> deliver);

  void start();
  void set_rate(double r);
  double rate() const { return rate_; }
  std::uint64_t emitted() const { return emitted_; }
  bool done() const { return emitted_ >= count_; }

 private:
  void emit();

  Simulator& sim_;
  double rate_;
  std::uint64_t count_;
  std::uint64_t emitted_ = 0;
  std::function<void()> deliver_;
};

// --------------------------------------------------------------- manager

struct DesManagerParams {
  double period_s = 5.0;
  double contract_lo = 0.0;
  double contract_hi = std::numeric_limits<double>::infinity();
  std::size_t min_workers = 1;
  std::size_t max_workers = 1 << 20;
  std::size_t add_per_step = 2;
  double cooldown_s = 10.0;
  double warmup_s = 10.0;
};

/// Periodic farm manager driving a DesFarm with the Fig. 5 rule set —
/// the same text the threaded managers load.
class DesFarmManager {
 public:
  using ViolationHandler =
      std::function<void(const std::string& kind)>;

  DesFarmManager(Simulator& sim, DesFarm& farm, DesManagerParams p);

  void start();
  void stop();

  /// Re-contract at run time (hierarchical renegotiation): updates the
  /// throughput bounds and the derived rule constants.
  void set_contract(double lo, double hi);

  double contract_lo() const { return p_.contract_lo; }
  double contract_hi() const { return p_.contract_hi; }
  std::size_t max_workers() const { return p_.max_workers; }

  /// Parent hook (hierarchy): called on RAISE_VIOLATION.
  ViolationHandler on_violation;

  // Counters for the scale ablations.
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t adds() const { return adds_; }
  std::uint64_t removes() const { return removes_; }
  std::uint64_t violations() const { return violations_; }

  /// First simulation time the delivered rate entered the contract range
  /// (negative until it happens).
  DesTime converged_at() const { return converged_at_; }

 private:
  void cycle();

  class Sink;

  Simulator& sim_;
  DesFarm& farm_;
  DesManagerParams p_;
  rules::Engine engine_;
  rules::WorkingMemory wm_;
  rules::ConstantTable consts_;
  bool running_ = false;
  double suppressed_until_ = 0.0;
  std::uint64_t cycles_ = 0;
  std::uint64_t adds_ = 0;
  std::uint64_t removes_ = 0;
  std::uint64_t violations_ = 0;
  DesTime converged_at_ = -1.0;
};

}  // namespace bsk::des
