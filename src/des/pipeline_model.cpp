#include "des/pipeline_model.hpp"

#include <algorithm>
#include <memory>

namespace bsk::des {

std::size_t DesFig4Result::count(const std::string& source,
                                 const std::string& name) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [&](const DesEvent& e) {
        return e.source == source && e.name == name;
      }));
}

DesTime DesFig4Result::first(const std::string& source,
                             const std::string& name) const {
  for (const DesEvent& e : events)
    if (e.source == source && e.name == name) return e.t;
  return -1.0;
}

DesTime DesFig4Result::last(const std::string& source,
                            const std::string& name) const {
  for (auto it = events.rbegin(); it != events.rend(); ++it)
    if (it->source == source && it->name == name) return it->t;
  return -1.0;
}

DesFig4Result run_fig4_model(const DesFig4Params& p) {
  Simulator sim;
  DesFig4Result result;

  DesFarmParams fp;
  fp.service_s = p.work_s;
  fp.initial_workers = p.initial_workers;
  fp.max_workers = p.max_workers;
  fp.window_s = p.window_s;
  DesFarm farm(sim, fp);

  std::uint64_t processed = 0;
  farm.on_departure = [&] {
    ++processed;
    if (processed == p.tasks) result.finished_at = sim.now();
  };

  DesSource producer(sim, p.initial_rate, p.tasks,
                     [&farm] { farm.offer(); });

  DesManagerParams mp;
  mp.period_s = p.am_period_s;
  mp.contract_lo = p.contract_lo;
  mp.contract_hi = p.contract_hi;
  mp.max_workers = p.max_workers;
  mp.add_per_step = p.add_per_step;
  mp.cooldown_s = p.cooldown_s;
  mp.warmup_s = p.warmup_s;
  DesFarmManager am_f(sim, farm, mp);

  // AM_A protocol model: one pending reaction per violation kind, applied
  // after its reaction latency; inert once the stream has ended.
  bool pending_inc = false;
  bool pending_dec = false;
  am_f.on_violation = [&](const std::string& kind) {
    result.events.push_back({sim.now(), "AM_F", "raiseViol", 0.0});
    const bool is_inc = kind == "notEnoughTasks_VIOL";
    bool& pending = is_inc ? pending_inc : pending_dec;
    if (pending) return;
    pending = true;
    sim.schedule_in(p.am_a_delay_s, [&, is_inc] {
      (is_inc ? pending_inc : pending_dec) = false;
      if (producer.done()) return;  // endStream: no significant action
      const double nr = producer.rate() *
                        (is_inc ? p.inc_rate_factor : p.dec_rate_factor);
      producer.set_rate(nr);
      result.events.push_back(
          {sim.now(), "AM_A", is_inc ? "incRate" : "decRate", nr});
    });
  };

  // AM_A's monitor: observe endStream once.
  std::function<void()> am_a_cycle = [&] {
    if (result.end_stream_at < 0.0 && producer.done()) {
      result.end_stream_at = sim.now();
      result.events.push_back({sim.now(), "AM_A", "endStream", 0.0});
    }
    if (result.end_stream_at < 0.0)
      sim.schedule_in(p.am_period_s, am_a_cycle);
  };

  producer.start();
  am_f.start();
  sim.schedule_in(p.am_period_s, am_a_cycle);

  const DesTime horizon = 1e6;
  while (processed < p.tasks && sim.now() < horizon) {
    if (!sim.step()) break;
  }
  am_f.stop();

  // Reconstruct addWorker/removeWorker events from the worker history.
  const auto& hist = farm.worker_history();
  for (std::size_t i = 1; i < hist.size(); ++i) {
    const auto [t, w] = hist[i];
    const auto prev = hist[i - 1].second;
    if (w > prev)
      result.events.push_back(
          {t, "AM_F", "addWorker", static_cast<double>(w - prev)});
    else if (w < prev)
      result.events.push_back(
          {t, "AM_F", "removeWorker", static_cast<double>(prev - w)});
  }
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const DesEvent& a, const DesEvent& b) { return a.t < b.t; });

  result.processed = processed;
  result.converged_at = am_f.converged_at();
  result.final_workers = farm.workers();
  result.final_producer_rate = producer.rate();
  return result;
}

}  // namespace bsk::des
