#pragma once
// DES model of the paper's Fig. 4 application: the full hierarchical
// management protocol — producer rate contracts, farm growth, violation
// routing — replayed deterministically on the event kernel.
//
// The farm manager is the rule-driven DesFarmManager (Fig. 5 text); the
// application manager AM_A is modelled by its protocol: a notEnoughTasks
// violation from the farm triggers an incRate contract to the producer
// after one AM_A control period, tooMuchTasks triggers decRate, and after
// the producer exhausts the stream neither is issued. Determinism makes
// this the reference oracle for the threaded Fig4App's event ordering and
// lets the protocol be swept at parameters the threaded runtime cannot
// reach quickly.

#include <string>
#include <vector>

#include "des/farm_model.hpp"

namespace bsk::des {

struct DesFig4Params {
  std::uint64_t tasks = 80;
  double initial_rate = 0.2;
  double work_s = 14.0;
  double contract_lo = 0.3;
  double contract_hi = 0.7;
  std::size_t initial_workers = 2;
  std::size_t max_workers = 10;
  double am_period_s = 5.0;
  double window_s = 10.0;
  double cooldown_s = 12.0;
  double warmup_s = 10.0;
  std::size_t add_per_step = 2;
  double inc_rate_factor = 2.0;
  double dec_rate_factor = 0.9;
  /// AM_A reaction latency to a reported violation.
  double am_a_delay_s = 1.0;
};

/// One event of the deterministic trace.
struct DesEvent {
  DesTime t = 0.0;
  std::string source;  ///< "AM_A" or "AM_F"
  std::string name;    ///< incRate / decRate / raiseViol / addWorker / ...
  double value = 0.0;
};

struct DesFig4Result {
  std::vector<DesEvent> events;
  std::uint64_t processed = 0;
  DesTime finished_at = 0.0;
  DesTime end_stream_at = -1.0;
  DesTime converged_at = -1.0;  ///< farm rate first inside the contract
  std::size_t final_workers = 0;
  double final_producer_rate = 0.0;

  std::size_t count(const std::string& source, const std::string& name) const;
  /// Time of the first (source,name) event, or -1.
  DesTime first(const std::string& source, const std::string& name) const;
  DesTime last(const std::string& source, const std::string& name) const;
};

/// Run the Fig. 4 scenario to completion on the DES kernel.
DesFig4Result run_fig4_model(const DesFig4Params& p);

}  // namespace bsk::des
