#pragma once
// Flat vs hierarchical management at scale (experiment E7).
//
// The paper argues hierarchical management is how behavioural skeletons
// scale to grid-size deployments but never runs one. This model makes the
// comparison concrete: N max workers are managed either by one flat farm
// manager, or split into g groups, each a farm with its own manager holding
// a 1/g share of the throughput contract (the farm split of P_spl), plus a
// top-level monitor. Each manager can only grow its own group a fixed
// number of workers per control cycle — the mechanism that makes growth
// parallel in the hierarchy and serial in the flat configuration.

#include <cstdint>

#include "des/farm_model.hpp"

namespace bsk::des {

struct HierConfig {
  std::size_t groups = 1;         ///< 1 = flat single manager
  std::size_t max_workers = 256;  ///< total across all groups
  double arrival_rate = 50.0;     ///< offered load, tasks/s
  std::uint64_t tasks = 20000;
  double service_s = 1.0;
  double contract_lo = 40.0;      ///< aggregate SLA
  double contract_hi = 1e30;
  double manager_period_s = 5.0;
  double window_s = 10.0;
  std::size_t add_per_step = 2;   ///< workers one manager adds per firing
  double cooldown_s = 10.0;
  double warmup_s = 10.0;
  std::uint64_t seed = 1;
  /// Exponential (vs deterministic) service times — desynchronizes
  /// lockstep completions in freshly grown groups.
  bool exponential_service = false;

  /// Relative group speeds (service time divides by speed); empty =
  /// homogeneous. Size must equal `groups` when non-empty.
  std::vector<double> group_speeds;

  /// Dynamic P_spl: the top manager periodically re-splits the contract —
  /// a group saturated below its share keeps only what it can deliver, the
  /// deficit moves to unsaturated groups, and the dispatcher's weights
  /// follow the shares. Off = the paper's static split.
  bool renegotiate = false;
  double renegotiate_period_s = 30.0;
};

struct HierResult {
  DesTime finished_at = 0.0;     ///< when the last task completed
  DesTime converged_at = -1.0;   ///< first time aggregate rate met the SLA
  std::uint64_t manager_cycles = 0;
  std::uint64_t adds = 0;
  std::uint64_t violations = 0;
  std::size_t final_workers = 0;
  std::uint64_t completed = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t renegotiations = 0;
  /// Fraction of post-warmup monitor samples with the aggregate delivered
  /// rate inside the SLA (steady-state quality; transient backlog-drain
  /// bursts can fake a one-off convergence).
  double sla_fraction = 0.0;
};

/// Run the scenario to completion and report.
HierResult run_hierarchy(const HierConfig& cfg);

}  // namespace bsk::des
