// bsk-trace — merge and validate per-process observability artifacts.
//
//   bsk-trace merge -o OUT FILE...   merge JSONL traces into one time-ordered,
//                                    causally consistent trace ("-" = stdout)
//   bsk-trace validate FILE...       strict JSONL check; exits 1 at the first
//                                    malformed line (file:line reported)
//   bsk-trace promcheck FILE         validate Prometheus text exposition
//
// run_experiments.sh uses `merge` to fold the local process's trace and every
// bskd's pulled trace into the per-experiment archive, and CI uses `validate`
// / `promcheck` to keep "our emitters produce valid output" an enforced
// property instead of a convention.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace {

int usage() {
  std::cerr << "usage: bsk-trace merge -o OUT FILE...\n"
               "       bsk-trace validate FILE...\n"
               "       bsk-trace promcheck FILE\n";
  return 2;
}

bool read_lines(const std::string& path, std::vector<std::string>& out,
                std::vector<std::pair<std::string, std::size_t>>* origin) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bsk-trace: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.empty()) continue;
    out.push_back(line);
    if (origin) origin->emplace_back(path, n);
  }
  return true;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      files.push_back(args[i]);
    }
  }
  if (out_path.empty() || files.empty()) return usage();

  std::vector<std::string> lines;
  for (const std::string& f : files)
    if (!read_lines(f, lines, nullptr)) return 1;

  std::vector<std::string> merged;
  bsk::obs::MergeStats stats;
  std::string err;
  if (!bsk::obs::merge_trace_lines(lines, merged, &stats, &err)) {
    std::cerr << "bsk-trace: merge failed: " << err << "\n";
    return 1;
  }

  std::ofstream file_out;
  std::ostream* os = &std::cout;
  if (out_path != "-") {
    file_out.open(out_path);
    if (!file_out) {
      std::cerr << "bsk-trace: cannot write " << out_path << "\n";
      return 1;
    }
    os = &file_out;
  }
  for (const std::string& line : merged) *os << line << '\n';
  os->flush();
  std::cerr << "bsk-trace: merged " << stats.lines << " records from "
            << files.size() << " file(s), " << stats.causal_moves
            << " causal reorder(s)\n";
  return os->good() ? 0 : 1;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::size_t total = 0;
  for (const std::string& f : args) {
    std::vector<std::string> lines;
    std::vector<std::pair<std::string, std::size_t>> origin;
    if (!read_lines(f, lines, &origin)) return 1;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string err;
      if (!bsk::obs::validate_trace_line(lines[i], &err)) {
        std::cerr << "bsk-trace: " << origin[i].first << ":"
                  << origin[i].second << ": invalid JSONL: " << err << "\n";
        return 1;
      }
    }
    total += lines.size();
  }
  std::cerr << "bsk-trace: " << total << " line(s) valid\n";
  return 0;
}

int cmd_promcheck(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::ifstream in(args[0]);
  if (!in) {
    std::cerr << "bsk-trace: cannot open " << args[0] << "\n";
    return 1;
  }
  std::string err;
  if (!bsk::obs::validate_prometheus_text(in, &err)) {
    std::cerr << "bsk-trace: " << args[0] << ": " << err << "\n";
    return 1;
  }
  std::cerr << "bsk-trace: " << args[0] << " ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "merge") return cmd_merge(args);
  if (cmd == "validate") return cmd_validate(args);
  if (cmd == "promcheck") return cmd_promcheck(args);
  return usage();
}
