#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "support/clock.hpp"
#include "support/json.hpp"

namespace bsk::obs {

namespace detail {

namespace {

bool initial_enabled() {
  const char* v = std::getenv("BSK_OBS");
  if (!v) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "false");
}

}  // namespace

std::atomic<bool> g_enabled{initial_enabled()};
std::atomic<std::size_t> g_next_shard{0};

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double mono_now() noexcept { return support::mono_now(); }

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  stride_ = bounds_.size() + 1;
  cells_ = std::vector<std::atomic<std::uint64_t>>(kShards * stride_);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.assign(stride_, 0);
  for (std::size_t shard = 0; shard < kShards; ++shard)
    for (std::size_t b = 0; b < stride_; ++b)
      s.counts[b] +=
          cells_[shard * stride_ + b].load(std::memory_order_relaxed);
  for (const std::uint64_t c : s.counts) s.count += c;
  for (const auto& p : sums_) s.sum += p.v.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : cells_) n += c.load(std::memory_order_relaxed);
  return n;
}

void Histogram::reset() noexcept {
  for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  for (auto& p : sums_) p.v.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. We control every name in
// the codebase, but sanitize anyway so a stray label can't corrupt the
// exposition.
std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' ||
                    (!out.empty() && c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::get_or_create(
    std::string_view name, std::string_view help, MetricKind kind,
    std::vector<double> bounds) {
  const std::string key = sanitize_name(name);
  support::MutexLock lk(mu_);
  if (auto it = index_.find(key); it != index_.end()) return *it->second;
  auto entry = std::make_unique<Entry>();
  entry->name = key;
  entry->help = std::string(help);
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter: entry->c = std::make_unique<Counter>(); break;
    case MetricKind::kGauge: entry->g = std::make_unique<Gauge>(); break;
    case MetricKind::kHistogram:
      entry->h = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  Entry& ref = *entry;
  entries_.push_back(std::move(entry));
  index_.emplace(key, &ref);
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  return *get_or_create(name, help, MetricKind::kCounter).c;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  return *get_or_create(name, help, MetricKind::kGauge).g;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds,
                                      std::string_view help) {
  return *get_or_create(name, help, MetricKind::kHistogram,
                        std::move(upper_bounds))
              .h;
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::sorted_entries()
    const {
  support::MutexLock lk(mu_);
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  std::sort(out.begin(), out.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  using support::json::number_token;
  for (const Entry* e : sorted_entries()) {
    if (!e->help.empty())
      os << "# HELP " << e->name << ' ' << escape_help(e->help) << '\n';
    switch (e->kind) {
      case MetricKind::kCounter:
        os << "# TYPE " << e->name << " counter\n"
           << e->name << ' ' << e->c->value() << '\n';
        break;
      case MetricKind::kGauge:
        os << "# TYPE " << e->name << " gauge\n"
           << e->name << ' ' << number_token(e->g->value()) << '\n';
        break;
      case MetricKind::kHistogram: {
        const Histogram::Snapshot s = e->h->snapshot();
        os << "# TYPE " << e->name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          cum += s.counts[b];
          os << e->name << "_bucket{le=\"" << number_token(s.bounds[b])
             << "\"} " << cum << '\n';
        }
        os << e->name << "_bucket{le=\"+Inf\"} " << s.count << '\n'
           << e->name << "_sum " << number_token(s.sum) << '\n'
           << e->name << "_count " << s.count << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  using support::json::number_token;
  const std::string tw = number_token(mono_now());
  for (const Entry* e : sorted_entries()) {
    std::string row = "{\"metric\":\"";
    row += support::json::escape(e->name);
    row += "\",\"tw\":";
    row += tw;
    switch (e->kind) {
      case MetricKind::kCounter:
        row += ",\"type\":\"counter\",\"value\":";
        row += std::to_string(e->c->value());
        break;
      case MetricKind::kGauge:
        row += ",\"type\":\"gauge\",\"value\":";
        row += number_token(e->g->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram::Snapshot s = e->h->snapshot();
        row += ",\"type\":\"histogram\",\"count\":";
        row += std::to_string(s.count);
        row += ",\"sum\":";
        row += number_token(s.sum);
        row += ",\"buckets\":[";
        for (std::size_t b = 0; b < s.counts.size(); ++b) {
          if (b) row += ',';
          row += "{\"le\":";
          // The +Inf bucket's bound is not a JSON number; emit null.
          row += b < s.bounds.size() ? number_token(s.bounds[b]) : "null";
          row += ",\"n\":";
          row += std::to_string(s.counts[b]);
          row += '}';
        }
        row += ']';
        break;
      }
    }
    row += "}\n";
    os.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
}

void MetricsRegistry::reset_values() {
  support::MutexLock lk(mu_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case MetricKind::kCounter: e->c->reset(); break;
      case MetricKind::kGauge: e->g->reset(); break;
      case MetricKind::kHistogram: e->h->reset(); break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  support::MutexLock lk(mu_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// AtomicRateWindow

AtomicRateWindow::AtomicRateWindow(double window_s, std::size_t buckets)
    : width_(window_s / static_cast<double>(buckets ? buckets : 1)),
      window_(window_s),
      // Slack cells beyond the window so the slice a full window ago is not
      // already being overwritten by the newest one (indices wrap mod size).
      cells_((buckets ? buckets : 1) + 8) {}

void AtomicRateWindow::record(double t) noexcept {
  totals_[detail::thread_shard()].v.fetch_add(1, std::memory_order_relaxed);
  if (t < 0.0) t = 0.0;
  const auto slice = static_cast<std::uint64_t>(t / width_);
  Cell& cell = cells_[slice % cells_.size()];
  for (;;) {
    std::uint64_t cur = cell.slice.load(std::memory_order_acquire);
    if (cur == slice) {
      cell.count.fetch_add(1, std::memory_order_relaxed);
      // If the cell rotated under us the increment landed in a dead slice;
      // retry so the event is not silently attributed to the wrong window.
      if (cell.slice.load(std::memory_order_acquire) == slice) return;
      continue;
    }
    if (cell.slice.compare_exchange_strong(cur, slice,
                                           std::memory_order_acq_rel)) {
      cell.count.store(1, std::memory_order_release);
      return;
    }
  }
}

double AtomicRateWindow::rate(double now) const noexcept {
  if (window_ <= 0.0) return 0.0;
  const double lo = now - window_;
  std::uint64_t n = 0;
  for (const Cell& cell : cells_) {
    const std::uint64_t slice = cell.slice.load(std::memory_order_acquire);
    if (slice == kEmpty) continue;
    const double start = static_cast<double>(slice) * width_;
    if (start + width_ > lo && start <= now)
      n += cell.count.load(std::memory_order_relaxed);
  }
  return static_cast<double>(n) / window_;
}

std::uint64_t AtomicRateWindow::total() const noexcept {
  std::uint64_t n = 0;
  for (const auto& s : totals_) n += s.v.load(std::memory_order_relaxed);
  return n;
}

void AtomicRateWindow::reset() noexcept {
  for (auto& cell : cells_) {
    cell.slice.store(kEmpty, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
  }
  for (auto& s : totals_) s.v.store(0, std::memory_order_relaxed);
}

}  // namespace bsk::obs
