#pragma once
// MAPE decision spans and the cross-process trace merge.
//
// Each autonomic-manager control cycle emits one MapeSpan: the beans its
// monitor phase read, the rules that fired, the actuations it executed and
// their results, the contract state it left behind — plus causal links to the
// cycles (possibly in other managers or other processes) whose raiseViol it
// is reacting to. Spans serialize as one JSON line each; bsk-trace merges
// per-process JSONL files into a single time-ordered trace on the shared
// monotonic wall stamp ("tw"), then nudges effects after their recorded
// causes where clock granularity put them out of order.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/thread_annotations.hpp"

namespace bsk::obs {

/// A causal link: "this cycle reacts to `kind` raised by that cycle".
struct SpanCause {
  std::string proc;
  std::string manager;
  std::uint64_t cycle = 0;
  std::string kind;  ///< e.g. "perf", "escalation"
};

/// One actuation (or notable observation) executed during the cycle.
struct SpanAction {
  std::string name;  ///< e.g. "addWorker"
  double value = 0.0;
  std::string detail;
};

/// One manager control cycle, the unit of the decision trace.
struct MapeSpan {
  std::string proc;     ///< process tag (TraceLog fills if empty)
  std::string manager;  ///< manager name, e.g. "AM_F"
  std::uint64_t cycle = 0;
  double t_begin = 0.0, t_end = 0.0;    ///< SimTime bounds of the cycle
  double tw_begin = 0.0, tw_end = 0.0;  ///< monotonic wall bounds
  std::vector<std::pair<std::string, double>> beans;  ///< monitor phase reads
  std::vector<std::string> rules;                     ///< rules fired
  std::vector<SpanAction> actions;                    ///< actuations + results
  std::string contract;  ///< contract state after the cycle
  std::string mode;      ///< "active" / "passive"
  std::vector<SpanCause> causes;

  /// One JSON object, no trailing newline. {"type":"mape_span",...}
  std::string to_jsonl() const;
};

/// Process-wide span sink. Spans arrive once per control cycle (low rate), so
/// a single mutex suffices; they are serialized at record time so dumping is
/// a plain copy.
class TraceLog {
 public:
  static TraceLog& global();

  /// Tag stamped into spans recorded without one ("local", "bskd:9123", ...).
  void set_process_tag(std::string tag);
  std::string process_tag() const;

  void record(MapeSpan span);

  /// Append a pre-serialized JSONL record (one object, no newline) — used by
  /// bskd to fold records pulled from elsewhere into its own dump.
  void record_line(std::string jsonl);

  std::vector<std::string> lines() const;
  void dump_jsonl(std::ostream& os) const;
  void clear();
  std::size_t size() const;

 private:
  mutable support::Mutex mu_{"TraceLog"};
  std::string tag_ BSK_GUARDED_BY(mu_) = "local";
  std::vector<std::string> lines_ BSK_GUARDED_BY(mu_);
};

struct MergeStats {
  std::size_t lines = 0;
  std::size_t causal_moves = 0;  ///< records re-ordered to follow their cause
};

/// Merge JSONL trace lines (spans and plain events alike) into one
/// time-ordered, causally consistent sequence. Sort key is "tw" (falling
/// back to "t"), ties broken by input order; a span whose recorded cause
/// sorts after it is moved to just after that cause. Returns false and sets
/// `err` if any line is not a valid JSON object.
bool merge_trace_lines(const std::vector<std::string>& in,
                       std::vector<std::string>& out,
                       MergeStats* stats = nullptr, std::string* err = nullptr);

/// Strictly validate one trace line: exactly one JSON object.
bool validate_trace_line(const std::string& line, std::string* err = nullptr);

/// Validate Prometheus text exposition format (HELP/TYPE comments + sample
/// lines). Returns false and sets `err` at the first malformed line.
bool validate_prometheus_text(std::istream& in, std::string* err = nullptr);

}  // namespace bsk::obs
