#pragma once
// bsk::obs — process-wide metrics on sharded, relaxed atomics.
//
// The hot paths this instruments (farm dispatch batches, net frame sends,
// sensor reads feeding the MAPE monitor phase) run millions of times per
// experiment; a mutex there would show up in E14. So every primitive here is
// a fixed array of cache-line-padded relaxed atomics, striped per recording
// thread: writes are one predictable-branch gate check plus one fetch_add on
// a line no other thread is writing, and readers pay the (cold-path) cost of
// summing the stripes.
//
// A process-wide MetricsRegistry names the instruments and exposes them as
// Prometheus text or a JSONL snapshot; `bsk::obs::enabled()` is the global
// kill switch that E14 flips to measure instrumentation overhead honestly —
// disabled, every record degenerates to a relaxed load and a branch.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/thread_annotations.hpp"

namespace bsk::obs {

inline constexpr std::size_t kShards = 8;

namespace detail {

extern std::atomic<bool> g_enabled;
extern std::atomic<std::size_t> g_next_shard;

/// Per-thread stripe, assigned round-robin at first use.
inline std::size_t thread_shard() noexcept {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedDouble {
  std::atomic<double> v{0.0};
};

inline void atomic_add(std::atomic<double>& a, double x) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Global instrumentation gate (default on; BSK_OBS=0 in the environment
/// starts the process disabled). Checked on every record.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Monotonic wall seconds (shared epoch across local processes); the stamp
/// trace records are merged on.
double mono_now() noexcept;

/// Monotonically increasing counter, striped across kShards cache lines.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, kShards> shards_{};
};

/// Last-writer-wins scalar (queue depths, epochs, occupancy).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  void add(double d) noexcept {
    if (!enabled()) return;
    detail::atomic_add(v_, d);
  }

  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bin histogram: explicit ascending upper bounds plus an implicit
/// +Inf bucket. Bucket counts are striped per thread; sums likewise.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept {
    if (!enabled()) return;
    const std::size_t shard = detail::thread_shard();
    cells_[shard * stride_ + bucket_of(x)].fetch_add(
        1, std::memory_order_relaxed);
    detail::atomic_add(sums_[shard].v, x);
  }

  struct Snapshot {
    std::vector<double> bounds;         ///< upper bounds (excluding +Inf)
    std::vector<std::uint64_t> counts;  ///< per-bucket, last entry = +Inf
    std::uint64_t count = 0;            ///< total observations
    double sum = 0.0;                   ///< total of observed values
  };
  Snapshot snapshot() const;

  std::uint64_t count() const noexcept;
  void reset() noexcept;

 private:
  std::size_t bucket_of(double x) const noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b]) ++b;
    return b;
  }

  std::vector<double> bounds_;
  std::size_t stride_;  // bounds_.size() + 1 (the +Inf bucket)
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::array<detail::PaddedDouble, kShards> sums_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Process-wide named-metric registry. Registration takes a mutex once;
/// returned references stay valid for the process lifetime, so call sites
/// hoist them into statics/members and record lock-free thereafter.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       std::string_view help = {});

  /// Prometheus text exposition format 0.0.4, metrics sorted by name.
  void write_prometheus(std::ostream& os) const;

  /// One JSON object per metric per line (histograms carry their buckets).
  void write_jsonl(std::ostream& os) const;

  /// Zero every registered metric's value (names stay registered — returned
  /// references must survive). Test isolation only.
  void reset_values();

  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& get_or_create(std::string_view name, std::string_view help,
                       MetricKind kind, std::vector<double> bounds = {});
  std::vector<const Entry*> sorted_entries() const;

  mutable support::Mutex mu_{"MetricsRegistry"};
  std::vector<std::unique_ptr<Entry>> entries_ BSK_GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry*> index_ BSK_GUARDED_BY(mu_);
};

/// Shorthands for the common "register once, hold the reference" pattern.
inline Counter& counter(std::string_view name, std::string_view help = {}) {
  return MetricsRegistry::global().counter(name, help);
}
inline Gauge& gauge(std::string_view name, std::string_view help = {}) {
  return MetricsRegistry::global().gauge(name, help);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> upper_bounds,
                            std::string_view help = {}) {
  return MetricsRegistry::global().histogram(name, std::move(upper_bounds),
                                             help);
}

/// Lock-free sliding-window event-rate estimator over SimTime — the registry
/// counterpart of support::RateEstimator, used by rt::NodeMetrics so sensor
/// reads in the monitor phase never contend with dataplane records.
///
/// Time is quantized into `buckets` slices of window/buckets seconds; each
/// slice maps to a cell tagged with its slice index. Recording into a stale
/// cell rotates it (CAS on the tag); a concurrent record that loses the
/// rotation race can drop one event at a slice boundary, which is noise at
/// sensor granularity.
class AtomicRateWindow {
 public:
  explicit AtomicRateWindow(double window_s = 10.0, std::size_t buckets = 64);

  void record(double t) noexcept;

  /// Events/second over the trailing window ending at `now`, at bucket
  /// granularity.
  double rate(double now) const noexcept;

  std::uint64_t total() const noexcept;

  /// Not safe against concurrent record(); callers quiesce first.
  void reset() noexcept;

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> slice{kEmpty};
    std::atomic<std::uint64_t> count{0};
  };

  double width_;
  double window_;
  std::vector<Cell> cells_;
  std::array<detail::PaddedU64, kShards> totals_{};
};

/// Lock-free count/sum pair for mean estimates (service time, latency).
class AtomicMean {
 public:
  void add(double x) noexcept {
    const std::size_t shard = detail::thread_shard();
    counts_[shard].v.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sums_[shard].v, x);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : counts_) n += s.v.load(std::memory_order_relaxed);
    return n;
  }

  double sum() const noexcept {
    double s = 0.0;
    for (const auto& p : sums_) s += p.v.load(std::memory_order_relaxed);
    return s;
  }

  double mean() const noexcept {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

  void reset() noexcept {
    for (auto& s : counts_) s.v.store(0, std::memory_order_relaxed);
    for (auto& p : sums_) p.v.store(0.0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, kShards> counts_{};
  std::array<detail::PaddedDouble, kShards> sums_{};
};

}  // namespace bsk::obs
