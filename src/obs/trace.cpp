#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "support/json.hpp"

namespace bsk::obs {

namespace json = support::json;

std::string MapeSpan::to_jsonl() const {
  std::string s = "{\"type\":\"mape_span\",\"proc\":\"";
  s += json::escape(proc);
  s += "\",\"manager\":\"";
  s += json::escape(manager);
  s += "\",\"cycle\":";
  s += std::to_string(cycle);
  s += ",\"t\":";
  s += json::number_token(t_begin);
  s += ",\"t_end\":";
  s += json::number_token(t_end);
  s += ",\"tw\":";
  s += json::number_token(tw_begin);
  s += ",\"tw_end\":";
  s += json::number_token(tw_end);
  s += ",\"beans\":{";
  for (std::size_t i = 0; i < beans.size(); ++i) {
    if (i) s += ',';
    s += '"';
    s += json::escape(beans[i].first);
    s += "\":";
    s += json::number_token(beans[i].second);
  }
  s += "},\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) s += ',';
    s += '"';
    s += json::escape(rules[i]);
    s += '"';
  }
  s += "],\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i) s += ',';
    s += "{\"name\":\"";
    s += json::escape(actions[i].name);
    s += "\",\"value\":";
    s += json::number_token(actions[i].value);
    if (!actions[i].detail.empty()) {
      s += ",\"detail\":\"";
      s += json::escape(actions[i].detail);
      s += '"';
    }
    s += '}';
  }
  s += "],\"contract\":\"";
  s += json::escape(contract);
  s += "\",\"mode\":\"";
  s += json::escape(mode);
  s += '"';
  if (!causes.empty()) {
    s += ",\"causes\":[";
    for (std::size_t i = 0; i < causes.size(); ++i) {
      if (i) s += ',';
      s += "{\"proc\":\"";
      s += json::escape(causes[i].proc);
      s += "\",\"manager\":\"";
      s += json::escape(causes[i].manager);
      s += "\",\"cycle\":";
      s += std::to_string(causes[i].cycle);
      s += ",\"kind\":\"";
      s += json::escape(causes[i].kind);
      s += "\"}";
    }
    s += ']';
  }
  s += '}';
  return s;
}

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

void TraceLog::set_process_tag(std::string tag) {
  support::MutexLock lk(mu_);
  tag_ = std::move(tag);
}

std::string TraceLog::process_tag() const {
  support::MutexLock lk(mu_);
  return tag_;
}

void TraceLog::record(MapeSpan span) {
  support::MutexLock lk(mu_);
  if (span.proc.empty()) span.proc = tag_;
  lines_.push_back(span.to_jsonl());
}

void TraceLog::record_line(std::string jsonl) {
  support::MutexLock lk(mu_);
  lines_.push_back(std::move(jsonl));
}

std::vector<std::string> TraceLog::lines() const {
  support::MutexLock lk(mu_);
  return lines_;
}

void TraceLog::dump_jsonl(std::ostream& os) const {
  for (const std::string& line : lines()) os << line << '\n';
}

void TraceLog::clear() {
  support::MutexLock lk(mu_);
  lines_.clear();
}

std::size_t TraceLog::size() const {
  support::MutexLock lk(mu_);
  return lines_.size();
}

// ---------------------------------------------------------------------------
// Merge

namespace {

std::string span_key(const std::string& proc, const std::string& manager,
                     std::uint64_t cycle) {
  std::string k = proc;
  k += '\x1f';
  k += manager;
  k += '\x1f';
  k += std::to_string(cycle);
  return k;
}

struct Rec {
  const std::string* line = nullptr;
  std::size_t idx = 0;    // input order, the tie-breaker
  double time = 0.0;      // tw if present, else t
  double eff = 0.0;       // causally adjusted sort time
  bool is_span = false;
  std::string key;                 // span identity
  std::vector<std::string> cause_keys;
};

}  // namespace

bool merge_trace_lines(const std::vector<std::string>& in,
                       std::vector<std::string>& out, MergeStats* stats,
                       std::string* err) {
  std::vector<Rec> recs;
  recs.reserve(in.size());
  std::unordered_map<std::string, std::size_t> span_at;

  for (std::size_t i = 0; i < in.size(); ++i) {
    std::string perr;
    const auto v = json::parse(in[i], &perr);
    if (!v || !v->is_object()) {
      if (err)
        *err = "line " + std::to_string(i + 1) + ": " +
               (v ? "not a JSON object" : perr);
      return false;
    }
    Rec r;
    r.line = &in[i];
    r.idx = i;
    r.time = v->number_or("tw", v->number_or("t", 0.0));
    if (v->string_or("type", "") == "mape_span") {
      r.is_span = true;
      r.key = span_key(v->string_or("proc", ""), v->string_or("manager", ""),
                       static_cast<std::uint64_t>(v->number_or("cycle", 0)));
      if (const json::Value* causes = v->get("causes");
          causes && causes->is_array()) {
        for (const json::Value& c : causes->array) {
          if (!c.is_object()) continue;
          r.cause_keys.push_back(span_key(
              c.string_or("proc", ""), c.string_or("manager", ""),
              static_cast<std::uint64_t>(c.number_or("cycle", 0))));
        }
      }
    }
    recs.push_back(std::move(r));
  }
  for (std::size_t i = 0; i < recs.size(); ++i)
    if (recs[i].is_span) span_at.emplace(recs[i].key, i);

  // Effect records must sort after their recorded causes even when clock
  // granularity stamped them equal or inverted. Propagate to a fixpoint
  // (cause chains are cycle-id links, so depth is bounded by the hierarchy).
  for (Rec& r : recs) r.eff = r.time;
  std::size_t moved = 0;
  for (std::size_t pass = 0; pass < recs.size() + 1; ++pass) {
    bool changed = false;
    for (Rec& r : recs) {
      for (const std::string& ck : r.cause_keys) {
        const auto it = span_at.find(ck);
        if (it == span_at.end()) continue;  // cause not in this merge set
        const Rec& cause = recs[it->second];
        if (&cause == &r) continue;
        const double min_eff = cause.eff + 1e-9;
        if (r.eff < min_eff) {
          if (r.eff == r.time) ++moved;
          r.eff = min_eff;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  std::vector<std::size_t> order(recs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (recs[a].eff != recs[b].eff)
                       return recs[a].eff < recs[b].eff;
                     return recs[a].idx < recs[b].idx;
                   });

  out.clear();
  out.reserve(recs.size());
  for (const std::size_t i : order) out.push_back(*recs[i].line);
  if (stats) {
    stats->lines = recs.size();
    stats->causal_moves = moved;
  }
  return true;
}

bool validate_trace_line(const std::string& line, std::string* err) {
  std::string perr;
  const auto v = json::parse(line, &perr);
  if (!v) {
    if (err) *err = perr;
    return false;
  }
  if (!v->is_object()) {
    if (err) *err = "not a JSON object";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Prometheus text-format validation

namespace {

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (const char c : s.substr(1))
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_label_name(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(s[0])) return false;
  for (const char c : s.substr(1))
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_sample_value(std::string_view s) {
  if (s == "+Inf" || s == "-Inf" || s == "Inf" || s == "NaN") return true;
  if (s.empty()) return false;
  double d = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), d);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

// name[{label="value",...}] value [timestamp]
bool valid_sample_line(std::string_view line) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (!valid_metric_name(line.substr(0, i))) return false;
  if (i < line.size() && line[i] == '{') {
    ++i;
    if (i < line.size() && line[i] == '}') {
      ++i;  // empty label set
    } else {
      for (;;) {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos) return false;
        if (!valid_label_name(line.substr(i, eq - i))) return false;
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') return false;
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') ++i;  // escaped char inside label value
          ++i;
        }
        if (i >= line.size()) return false;
        ++i;  // closing quote
        if (i < line.size() && line[i] == ',') {
          ++i;
          continue;
        }
        if (i < line.size() && line[i] == '}') {
          ++i;
          break;
        }
        return false;
      }
    }
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  const std::size_t sp = line.find(' ', i);
  const std::string_view value =
      line.substr(i, sp == std::string_view::npos ? line.size() - i : sp - i);
  if (!valid_sample_value(value)) return false;
  if (sp != std::string_view::npos) {
    // Optional integer timestamp.
    const std::string_view ts = line.substr(sp + 1);
    if (ts.empty()) return false;
    std::int64_t t = 0;
    const auto res = std::from_chars(ts.data(), ts.data() + ts.size(), t);
    if (res.ec != std::errc{} || res.ptr != ts.data() + ts.size())
      return false;
  }
  return true;
}

}  // namespace

bool validate_prometheus_text(std::istream& in, std::string* err) {
  std::string line;
  std::size_t lineno = 0;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# HELP name text" and "# TYPE name type" comments are emitted
      // by the registry; anything else starting '#' is a plain comment and
      // legal, but a malformed HELP/TYPE header is not.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string name =
            sp == std::string::npos ? rest : rest.substr(0, sp);
        if (!valid_metric_name(name)) {
          if (err)
            *err = "line " + std::to_string(lineno) +
                   ": bad metric name in comment header";
          return false;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
          const std::string type =
              sp == std::string::npos ? "" : rest.substr(sp + 1);
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            if (err)
              *err = "line " + std::to_string(lineno) + ": unknown TYPE '" +
                     type + "'";
            return false;
          }
        }
      }
      continue;
    }
    if (!valid_sample_line(line)) {
      if (err)
        *err = "line " + std::to_string(lineno) + ": malformed sample: " + line;
      return false;
    }
    ++samples;
  }
  if (samples == 0) {
    if (err) *err = "no samples found";
    return false;
  }
  return true;
}

}  // namespace bsk::obs
