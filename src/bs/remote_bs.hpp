#pragma once
// Remote placement for behavioural skeletons: a farm BS whose workers run
// in bskd worker processes.
//
// make_remote_farm_bs is make_farm_bs with the worker NodeFactory replaced
// by a net::WorkerPool — every worker the farm (or its manager, via
// ADD_EXECUTOR) instantiates becomes a RemoteWorkerNode connected to one of
// the pool's bskd endpoints. The manager additionally gets the
// fault-tolerance rule set: the pool's crash detector turns a killed bskd
// into Farm::failures(), FarmAbc::sense() into WorkerFailureBean, and the
// rules into ADD_EXECUTOR — which the pool satisfies with a fresh remote
// worker, or a local fallback when no bskd is left alive.

#include <memory>
#include <string>

#include "bs/behavioural_skeleton.hpp"
#include "net/worker_pool.hpp"

namespace bsk::bs {

/// Build a farm BS on remote workers. The pool must outlive the skeleton;
/// its crash detector is started against the farm (watch_period_wall_s,
/// wall seconds). `rm` may still supply core leases so resource accounting
/// matches local farms.
std::unique_ptr<BehaviouralSkeleton> make_remote_farm_bs(
    std::string name, rt::FarmConfig farm_cfg, net::WorkerPool& pool,
    am::ManagerConfig mgr_cfg = {}, sim::ResourceManager* rm = nullptr,
    sim::RecruitConstraints recruit = {}, rt::Placement home = {},
    support::EventLog* log = nullptr, double watch_period_wall_s = 0.1);

}  // namespace bsk::bs
