#pragma once
// Reference applications reproducing the paper's experiments.
//
// Fig3App — Sec. 4.1 / Fig. 3: a medical-image-processing task farm under a
// single autonomic manager with a minimum-throughput SLA; the manager grows
// the worker set until the contract is met.
//
// Fig4App — Sec. 4.2 / Fig. 4: the three-stage pipeline
// pipe(Producer, Farm(Filter), Consumer) under a four-manager hierarchy
// (AM_A over AM_P, AM_F, AM_C) maintaining a throughput-range SLA. AM_A's
// violation handling implements the paper's narrative: a notEnoughTasks
// violation from the farm triggers an incRate contract to the producer; a
// tooMuchTasks violation triggers decRate; after endStream neither fires.

#include <memory>

#include "bs/behavioural_skeleton.hpp"
#include "sim/platform.hpp"
#include "sim/resource_manager.hpp"

namespace bsk::bs {

// ----------------------------------------------------------------- Fig. 3

struct Fig3Params {
  std::size_t tasks = 100;          ///< images on the input stream
  double input_rate = 2.0;          ///< tasks/s offered (abundant pressure)
  double work_s = 5.0;              ///< per-image processing demand
  double contract_min_rate = 0.6;   ///< the paper's 0.6 images/s SLA
  std::size_t initial_workers = 1;
  std::size_t max_workers = 8;
  double am_period_s = 5.0;
  double rate_window_s = 10.0;
  double reconfig_delay_s = 2.0;
  double action_cooldown_s = 12.0;  ///< damping between grow steps
  double service_stddev_s = 0.5;    ///< image-cost jitter
  std::size_t add_workers_per_step = 1;  ///< workers per ADD_EXECUTOR firing
  std::uint64_t seed = 42;
  /// When set, farm workers come from this factory instead of the local
  /// SimComputeNode — how the E1 bench points the farm at a bskd WorkerPool.
  rt::NodeFactory worker_factory;
};

/// The single-manager farm experiment.
class Fig3App {
 public:
  Fig3App(const Fig3Params& p, sim::ResourceManager& rm,
          support::EventLog& log);

  void start();
  void wait();

  BehaviouralSkeleton& app() { return *root_; }
  rt::Farm& farm();
  am::AutonomicManager& am() { return farm_bs_->manager(); }
  rt::StreamSink& sink();

  /// Cores currently used by the whole application.
  std::size_t cores_in_use();

 private:
  Fig3Params params_;
  BehaviouralSkeleton* farm_bs_ = nullptr;  // owned via root_
  std::unique_ptr<BehaviouralSkeleton> root_;
};

// ----------------------------------------------------------------- Fig. 4

struct Fig4Params {
  std::size_t tasks = 80;
  double initial_rate = 0.2;   ///< producer's initial (insufficient) rate
  double work_s = 14.0;        ///< filter demand: 2 workers deliver 0.14/s
  double contract_lo = 0.3;    ///< c_tRange = [0.3, 0.7] tasks/s
  double contract_hi = 0.7;
  std::size_t initial_workers = 2;
  std::size_t max_workers = 10;
  double am_period_s = 5.0;
  double rate_window_s = 10.0;
  double reconfig_delay_s = 4.0;
  double action_cooldown_s = 12.0;
  double inc_rate_factor = 2.0;   ///< producer-rate growth per incRate
  double dec_rate_factor = 0.9;   ///< producer-rate shrink per decRate
  double consumer_work_s = 0.2;
  std::uint64_t seed = 42;
};

/// The hierarchical-management pipeline experiment.
class Fig4App {
 public:
  Fig4App(const Fig4Params& p, sim::ResourceManager& rm,
          support::EventLog& log);

  void start();
  void wait();

  BehaviouralSkeleton& app() { return *root_; }
  am::AutonomicManager& am_a() { return root_->manager(); }
  am::AutonomicManager& am_p() { return root_->child(0).manager(); }
  am::AutonomicManager& am_f() { return root_->child(1).manager(); }
  am::AutonomicManager& am_c() { return root_->child(2).manager(); }

  rt::Pipeline& pipeline();
  rt::Farm& farm();
  rt::StreamSource& producer_source();
  rt::StreamSink& sink();

  std::size_t cores_in_use();

  /// Install the current contract (c_tRange) on the top manager.
  void install_contract();

 private:
  Fig4Params params_;
  std::unique_ptr<BehaviouralSkeleton> root_;
};

}  // namespace bsk::bs
