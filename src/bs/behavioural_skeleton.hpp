#pragma once
// Behavioural skeletons: the paper's core abstraction, BS = ⟨P, M_C⟩.
//
// A BehaviouralSkeleton couples one running parallelism-exploitation
// pattern (a rt::Runnable) with the ABC mediating it and the autonomic
// manager implementing the concern's policies. The factories build the two
// patterns the paper implements — functional replication (farm) and
// pipeline — with their standard manager wiring:
//
//   make_farm_bs  – a task farm whose manager runs the Fig. 5 rule set,
//                   recruiting cores from a resource manager;
//   make_seq_bs   – a sequential stage with a monitoring-only manager
//                   (rate-retunable when the node is a StreamSource);
//   make_pipeline_bs – a pipeline over child BSs; its manager splits
//                   contracts per Sec. 3.1 and consumes child violations.
//
// The manager tree is wired to mirror the skeleton tree (attach_child), so
// a contract set on the root propagates down and violations flow up —
// hierarchical management of a single concern, ready to run.

#include <memory>
#include <string>
#include <vector>

#include "am/abc.hpp"
#include "am/builtin_rules.hpp"
#include "am/manager.hpp"
#include "rt/builders.hpp"

namespace bsk::bs {

/// One node of the behavioural-skeleton tree: pattern + ABC + manager (the
/// paper's membrane), plus the child BSs.
class BehaviouralSkeleton {
 public:
  BehaviouralSkeleton(std::shared_ptr<rt::Runnable> runnable,
                      std::unique_ptr<am::Abc> abc,
                      std::unique_ptr<am::AutonomicManager> manager,
                      std::vector<std::unique_ptr<BehaviouralSkeleton>>
                          children = {})
      : runnable_(std::move(runnable)),
        abc_(std::move(abc)),
        manager_(std::move(manager)),
        children_(std::move(children)) {}

  rt::Runnable& runnable() { return *runnable_; }
  std::shared_ptr<rt::Runnable> runnable_ptr() { return runnable_; }
  am::Abc& abc() { return *abc_; }
  am::AutonomicManager& manager() { return *manager_; }

  std::size_t child_count() const { return children_.size(); }
  BehaviouralSkeleton& child(std::size_t i) { return *children_.at(i); }

  /// Start the computation and the whole manager hierarchy.
  void start() {
    runnable_->start();
    start_managers();
  }

  /// Start only the managers (recursively).
  void start_managers() {
    manager_->start();
    for (auto& c : children_) c->start_managers();
  }

  /// Stop all managers (recursively); the computation drains on its own.
  void stop_managers() {
    for (auto& c : children_) c->stop_managers();
    manager_->stop();
  }

  /// Wait for the computation to finish, then stop the managers.
  void wait() {
    runnable_->wait();
    stop_managers();
  }

 private:
  std::shared_ptr<rt::Runnable> runnable_;
  std::unique_ptr<am::Abc> abc_;
  std::unique_ptr<am::AutonomicManager> manager_;
  std::vector<std::unique_ptr<BehaviouralSkeleton>> children_;
};

/// Build a task-farm BS: the farm pattern + FarmAbc + a manager preloaded
/// with the paper's Fig. 5 rules. `rm` (optional) supplies worker cores.
std::unique_ptr<BehaviouralSkeleton> make_farm_bs(
    std::string name, rt::FarmConfig farm_cfg, rt::NodeFactory workers,
    am::ManagerConfig mgr_cfg = {}, sim::ResourceManager* rm = nullptr,
    sim::RecruitConstraints recruit = {}, rt::Placement home = {},
    support::EventLog* log = nullptr);

/// Build a sequential-stage BS (monitoring manager; no default rules).
std::unique_ptr<BehaviouralSkeleton> make_seq_bs(
    std::string name, std::unique_ptr<rt::Node> node,
    am::ManagerConfig mgr_cfg = {}, rt::Placement place = {},
    support::EventLog* log = nullptr);

/// Build a pipeline BS over child BSs. The pipeline manager gets the
/// pipeline splitter and the children attached (contracts flow down,
/// violations flow up).
std::unique_ptr<BehaviouralSkeleton> make_pipeline_bs(
    std::string name,
    std::vector<std::unique_ptr<BehaviouralSkeleton>> children,
    am::ManagerConfig mgr_cfg = {}, support::EventLog* log = nullptr);

/// Build a pipeline stage as a *growable* replica set of the stage's node —
/// the transformation the paper sketches as future work ("transform the
/// pipeline stage into a farm with the workers behaving as instances of the
/// original stage"). Starts with one replica; stream order is preserved
/// (ordered collection), so the stage's externally visible semantics are
/// unchanged while its manager can now grow it under load.
std::unique_ptr<BehaviouralSkeleton> make_growable_stage_bs(
    std::string name, rt::NodeFactory stage_factory,
    am::ManagerConfig mgr_cfg = {}, sim::ResourceManager* rm = nullptr,
    rt::Placement home = {}, support::EventLog* log = nullptr);

/// Stage weights measured from a running pipeline's observed mean service
/// times (1.0 for stages with no samples yet) — the run-time input to the
/// weight-proportional P_spl splitter, replacing a-priori guesses.
std::vector<double> measured_stage_weights(rt::Pipeline& pipe);

/// A pipeline splitter that re-measures stage weights at every contract
/// propagation (adaptive P_spl).
am::AutonomicManager::Splitter make_adaptive_pipeline_splitter(
    rt::Pipeline& pipe);

}  // namespace bsk::bs
