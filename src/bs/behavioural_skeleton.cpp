#include "bs/behavioural_skeleton.hpp"

namespace bsk::bs {

std::unique_ptr<BehaviouralSkeleton> make_farm_bs(
    std::string name, rt::FarmConfig farm_cfg, rt::NodeFactory workers,
    am::ManagerConfig mgr_cfg, sim::ResourceManager* rm,
    sim::RecruitConstraints recruit, rt::Placement home,
    support::EventLog* log) {
  auto farm = std::make_shared<rt::Farm>(name, farm_cfg, std::move(workers),
                                         home);
  auto abc = std::make_unique<am::FarmAbc>(*farm, rm, std::move(recruit));
  auto mgr = std::make_unique<am::AutonomicManager>("AM_" + name, *abc,
                                                    mgr_cfg, log);
  mgr->load_rules(am::farm_rules());
  // A farm hands its (unmanaged) workers best-effort sub-contracts.
  mgr->set_splitter([](const am::Contract& c, std::size_t n) {
    return std::vector<am::Contract>(n, am::farm_worker_contract(c));
  });
  return std::make_unique<BehaviouralSkeleton>(std::move(farm),
                                               std::move(abc), std::move(mgr));
}

std::unique_ptr<BehaviouralSkeleton> make_seq_bs(
    std::string name, std::unique_ptr<rt::Node> node,
    am::ManagerConfig mgr_cfg, rt::Placement place, support::EventLog* log) {
  auto stage =
      std::make_shared<rt::SeqStage>(name, std::move(node), place);
  auto abc = std::make_unique<am::SeqAbc>(*stage);
  auto mgr = std::make_unique<am::AutonomicManager>("AM_" + name, *abc,
                                                    mgr_cfg, log);
  return std::make_unique<BehaviouralSkeleton>(std::move(stage),
                                               std::move(abc), std::move(mgr));
}

std::unique_ptr<BehaviouralSkeleton> make_pipeline_bs(
    std::string name,
    std::vector<std::unique_ptr<BehaviouralSkeleton>> children,
    am::ManagerConfig mgr_cfg, support::EventLog* log) {
  std::vector<std::shared_ptr<rt::Runnable>> stages;
  stages.reserve(children.size());
  for (auto& c : children) stages.push_back(c->runnable_ptr());
  auto pipe = std::make_shared<rt::Pipeline>(name, std::move(stages));
  auto abc = std::make_unique<am::PipelineAbc>(*pipe);
  auto mgr = std::make_unique<am::AutonomicManager>("AM_" + name, *abc,
                                                    mgr_cfg, log);
  mgr->set_splitter([](const am::Contract& c, std::size_t n) {
    return am::split_for_pipeline(c, n);
  });
  for (auto& c : children) mgr->attach_child(c->manager());
  return std::make_unique<BehaviouralSkeleton>(
      std::move(pipe), std::move(abc), std::move(mgr), std::move(children));
}

std::unique_ptr<BehaviouralSkeleton> make_growable_stage_bs(
    std::string name, rt::NodeFactory stage_factory,
    am::ManagerConfig mgr_cfg, sim::ResourceManager* rm, rt::Placement home,
    support::EventLog* log) {
  rt::FarmConfig fc;
  fc.initial_workers = 1;
  fc.ordered = true;  // replicas must not reorder the stage's stream
  return make_farm_bs(std::move(name), fc, std::move(stage_factory), mgr_cfg,
                      rm, {}, home, log);
}

std::vector<double> measured_stage_weights(rt::Pipeline& pipe) {
  std::vector<double> w;
  w.reserve(pipe.stage_count());
  for (std::size_t i = 0; i < pipe.stage_count(); ++i) {
    double mean = 0.0;
    rt::Runnable& s = pipe.stage(i);
    if (auto* seq = dynamic_cast<rt::SeqStage*>(&s))
      mean = seq->metrics().mean_service_time();
    else if (auto* f = dynamic_cast<rt::Farm*>(&s))
      mean = f->metrics().mean_service_time();
    else if (auto* p = dynamic_cast<rt::Pipeline*>(&s)) {
      for (double x : measured_stage_weights(*p)) mean += x;
    }
    w.push_back(mean);
  }
  // Stages with no samples yet (e.g. sources) get the mean of the sampled
  // ones — neutral, so an unmeasured stage neither starves nor dominates
  // the split. All-unsampled pipelines degenerate to uniform weights.
  double sum = 0.0;
  std::size_t sampled = 0;
  for (double x : w)
    if (x > 0.0) {
      sum += x;
      ++sampled;
    }
  const double neutral = sampled > 0 ? sum / static_cast<double>(sampled)
                                     : 1.0;
  for (double& x : w)
    if (x <= 0.0) x = neutral;
  return w;
}

am::AutonomicManager::Splitter make_adaptive_pipeline_splitter(
    rt::Pipeline& pipe) {
  return [&pipe](const am::Contract& c, std::size_t n) {
    return am::split_for_pipeline(c, n, measured_stage_weights(pipe));
  };
}

}  // namespace bsk::bs
