#include "bs/remote_bs.hpp"

namespace bsk::bs {

std::unique_ptr<BehaviouralSkeleton> make_remote_farm_bs(
    std::string name, rt::FarmConfig farm_cfg, net::WorkerPool& pool,
    am::ManagerConfig mgr_cfg, sim::ResourceManager* rm,
    sim::RecruitConstraints recruit, rt::Placement home,
    support::EventLog* log, double watch_period_wall_s) {
  auto bs = make_farm_bs(std::move(name), farm_cfg, pool.factory(), mgr_cfg,
                         rm, std::move(recruit), home, log);
  // Crashed-process replacement on top of the Fig. 5 performance policy.
  bs->manager().load_rules(am::fault_tolerance_rules());
  auto& farm = dynamic_cast<rt::Farm&>(bs->runnable());
  pool.start_watch(farm, watch_period_wall_s);
  return bs;
}

}  // namespace bsk::bs
