#include "bs/apps.hpp"

namespace bsk::bs {

namespace {

rt::Placement platform_home(const sim::ResourceManager& rm) {
  return rt::Placement{&rm.platform(), 0};
}

}  // namespace

// ------------------------------------------------------------------ Fig. 3

Fig3App::Fig3App(const Fig3Params& p, sim::ResourceManager& rm,
                 support::EventLog& log)
    : params_(p) {
  const rt::Placement home = platform_home(rm);

  rt::FarmConfig fc;
  fc.initial_workers = p.initial_workers;
  fc.policy = rt::SchedPolicy::OnDemand;
  fc.reconfig_delay_s = p.reconfig_delay_s;
  fc.rate_window = support::SimDuration(p.rate_window_s);
  fc.worker_queue_capacity = p.tasks + 16;

  am::ManagerConfig mc;
  mc.period = support::SimDuration(p.am_period_s);
  mc.max_workers = p.max_workers;
  mc.action_cooldown_s = p.action_cooldown_s;
  mc.warmup_s = p.rate_window_s;

  auto source_bs = make_seq_bs(
      "producer",
      std::make_unique<rt::StreamSource>(
          p.tasks, p.input_rate,
          std::make_unique<sim::NormalService>(p.work_s, p.service_stddev_s,
                                               p.seed)),
      mc, home, &log);

  rt::NodeFactory wf = p.worker_factory
                           ? p.worker_factory
                           : [] { return std::make_unique<rt::SimComputeNode>(); };
  auto farm_bs = make_farm_bs("farm", fc, std::move(wf), mc, &rm, {}, home,
                              &log);
  farm_bs_ = farm_bs.get();
  farm_bs_->manager().constants().set(
      "FARM_ADD_WORKERS", static_cast<double>(p.add_workers_per_step));

  auto sink_bs = make_seq_bs("consumer", std::make_unique<rt::StreamSink>(),
                             mc, home, &log);

  std::vector<std::unique_ptr<BehaviouralSkeleton>> kids;
  kids.push_back(std::move(source_bs));
  kids.push_back(std::move(farm_bs));
  kids.push_back(std::move(sink_bs));
  root_ = make_pipeline_bs("fig3", std::move(kids), mc, &log);
}

void Fig3App::start() {
  root_->start();
  // The user's SLA: at least 0.6 images/s, delivered to the farm manager —
  // the single manager of this experiment (the pipeline manager merely
  // forwards, as a pipeline's throughput is its slowest stage's).
  root_->manager().set_contract(
      am::Contract::min_throughput(params_.contract_min_rate));
}

void Fig3App::wait() { root_->wait(); }

rt::Farm& Fig3App::farm() {
  return dynamic_cast<rt::Farm&>(farm_bs_->runnable());
}

rt::StreamSink& Fig3App::sink() {
  auto& stage = dynamic_cast<rt::SeqStage&>(root_->child(2).runnable());
  return *stage.node_as<rt::StreamSink>();
}

std::size_t Fig3App::cores_in_use() {
  return am::cores_in_use(root_->runnable());
}

// ------------------------------------------------------------------ Fig. 4

Fig4App::Fig4App(const Fig4Params& p, sim::ResourceManager& rm,
                 support::EventLog& log)
    : params_(p) {
  const rt::Placement home = platform_home(rm);

  rt::FarmConfig fc;
  fc.initial_workers = p.initial_workers;
  fc.policy = rt::SchedPolicy::RoundRobin;  // paper's farm + BALANCE_LOAD
  fc.reconfig_delay_s = p.reconfig_delay_s;
  fc.rate_window = support::SimDuration(p.rate_window_s);
  fc.worker_queue_capacity = p.tasks + 16;

  am::ManagerConfig mc;
  mc.period = support::SimDuration(p.am_period_s);
  mc.max_workers = p.max_workers;
  mc.action_cooldown_s = p.action_cooldown_s;
  mc.warmup_s = p.rate_window_s;

  auto producer_bs = make_seq_bs(
      "producer",
      std::make_unique<rt::StreamSource>(p.tasks, p.initial_rate, p.work_s),
      mc, home, &log);

  auto farm_bs = make_farm_bs(
      "farm", fc, [] { return std::make_unique<rt::SimComputeNode>(); }, mc,
      &rm, {}, home, &log);

  auto consumer_bs = make_seq_bs(
      "consumer", std::make_unique<rt::StreamSink>(p.consumer_work_s), mc,
      home, &log);

  // AM_P: apply *rate* contracts (lo == hi, the incRate/decRate orders) to
  // the source; the range contract leaves the application-determined rate.
  {
    auto& am_p = producer_bs->manager();
    auto& abc_p = dynamic_cast<am::SeqAbc&>(producer_bs->abc());
    am_p.set_on_contract([&abc_p](const am::Contract& c) {
      if (c.throughput && c.throughput->first == c.throughput->second)
        abc_p.set_rate(c.throughput->first);
    });
  }

  std::vector<std::unique_ptr<BehaviouralSkeleton>> kids;
  kids.push_back(std::move(producer_bs));
  kids.push_back(std::move(farm_bs));
  kids.push_back(std::move(consumer_bs));
  root_ = make_pipeline_bs("app", std::move(kids), mc, &log);

  // AM_A's hierarchical policy (the paper's Sec. 4.2 narrative): convert
  // farm violations into producer-rate contracts while the stream lives.
  auto& am_a = root_->manager();
  am_a.set_violation_handler([this, &am_a](const am::ChildViolation& v) {
    if (am_a.stream_ended()) return;  // endStream: no significant action
    auto& src = producer_source();
    if (v.kind == "notEnoughTasks_VIOL") {
      const double nr = src.rate() * params_.inc_rate_factor;
      am_a.record("incRate", nr);
      am_p().set_contract(am::Contract::rate(nr));
    } else if (v.kind == "tooMuchTasks_VIOL") {
      const double nr = src.rate() * params_.dec_rate_factor;
      am_a.record("decRate", nr);
      am_p().set_contract(am::Contract::rate(nr));
    }
  });
}

void Fig4App::install_contract() {
  root_->manager().set_contract(
      am::Contract::throughput_range(params_.contract_lo,
                                     params_.contract_hi));
}

void Fig4App::start() {
  root_->start();
  install_contract();
}

void Fig4App::wait() { root_->wait(); }

rt::Pipeline& Fig4App::pipeline() {
  return dynamic_cast<rt::Pipeline&>(root_->runnable());
}

rt::Farm& Fig4App::farm() {
  return dynamic_cast<rt::Farm&>(root_->child(1).runnable());
}

rt::StreamSource& Fig4App::producer_source() {
  auto& stage = dynamic_cast<rt::SeqStage&>(root_->child(0).runnable());
  return *stage.node_as<rt::StreamSource>();
}

rt::StreamSink& Fig4App::sink() {
  auto& stage = dynamic_cast<rt::SeqStage&>(root_->child(2).runnable());
  return *stage.node_as<rt::StreamSink>();
}

std::size_t Fig4App::cores_in_use() {
  return am::cores_in_use(root_->runnable());
}

}  // namespace bsk::bs
