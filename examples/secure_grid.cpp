// Performance and security managers coordinating on a mixed grid — the
// Sec. 3.2 scenario as a runnable example.
//
// A farm's home sits in a trusted cluster; the only spare cores are in
// untrusted_ip_domain_A. Under performance pressure the perf manager must
// recruit them. Its AddWorker intents pass through the GeneralManager's
// two-phase protocol, where the security participant demands the new
// worker's links be SSL-secured *before* any task reaches it — so the
// security contract holds even while the performance contract is being
// restored.

#include <cstdio>

#include "am/builtin_rules.hpp"
#include "am/multiconcern.hpp"
#include "bs/behavioural_skeleton.hpp"

int main() {
  using namespace bsk;
  support::ScopedClockScale clock(60.0);

  // 2 trusted cluster machines are fully occupied elsewhere — model this
  // as a trusted home machine with one spare core plus untrusted capacity.
  sim::Platform platform = sim::Platform::mixed_grid(0, 2, 4);
  platform.add_domain(sim::Domain{"hq", true});
  const sim::MachineId hq = platform.add_machine("hq0", "hq", 1);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  rt::FarmConfig fc;
  fc.initial_workers = 1;
  fc.rate_window = support::SimDuration(4.0);
  am::ManagerConfig mc;
  mc.period = support::SimDuration(1.0);
  mc.max_workers = 6;
  mc.warmup_s = 2.0;

  auto farm_bs = bs::make_farm_bs(
      "gridfarm", fc, [] { return std::make_unique<rt::SimComputeNode>(); },
      mc, &rm, {}, rt::Placement{&platform, hq}, &log);

  // The security manager: reactive rule (secure anything unsecured) plus a
  // participant in the two-phase protocol (preventive).
  am::AutonomicManager sec_am("AM_sec", farm_bs->abc(), mc, &log);
  sec_am.load_rules(am::security_rules());
  am::GeneralManager gm("GM", &log);
  am::SecurityParticipant sec_part;
  am::PerformanceParticipant perf_part(farm_bs->manager());
  gm.register_participant(sec_part, 100);  // boolean concern: priority
  gm.register_participant(perf_part, 10);
  farm_bs->abc().set_commit_gate(gm.gate("AM_perf"));

  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->manager().start();
  sec_am.start();
  farm_bs->manager().set_contract(am::Contract::min_throughput(1.5));
  sec_am.set_contract(am::Contract::secure());

  std::jthread feeder([&farm] {
    for (int i = 0; i < 80; ++i) {
      if (!farm.input()->push(rt::Task::data(i, 1.0))) return;
      support::Clock::sleep_for(support::SimDuration(0.3));
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });
  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->manager().stop();
  sec_am.stop();

  std::printf("workers spawned: %zu (max %zu)\n", farm.workers_spawned(),
              mc.max_workers);
  std::printf("GM intents: %zu, secure preparations: %zu, vetoes: %zu\n",
              gm.requests_seen(), log.count("GM", "prepareSecure"),
              gm.vetoes_issued());
  std::printf("insecure messages over untrusted links: %llu  <- the point\n",
              static_cast<unsigned long long>(farm.insecure_messages()));
  std::printf("\nGM decision log:\n");
  for (const auto& e : log.by_source("GM"))
    std::printf("  t=%6.1fs  %-14s %s\n", e.time, e.name.c_str(),
                e.detail.c_str());
  return 0;
}
