// Two-process farm: the skeleton, its manager, emitter and collector run
// here; the workers run in a bskd worker daemon reached over TCP loopback.
//
// The example spawns a bskd, builds a remote farm BS on it, streams 60
// tasks through, and kills the daemon mid-stream: the pool's failure
// detector reports the dead workers, the fault-tolerance rules replace
// them (with local fallback nodes, since no daemon is left), and the
// stream still completes — no task lost, exactly-once delivery.
//
// Run it standalone (bskd is spawned automatically):
//   ./examples/remote_farm
// or against an external daemon:
//   ./src/net/bskd --port 5555 &   then   ./examples/remote_farm 5555

#include <signal.h>

#include <cstdio>
#include <cstdlib>

#include "bs/remote_bs.hpp"

#ifndef BSK_BSKD_PATH
#define BSK_BSKD_PATH "bskd"
#endif

int main(int argc, char** argv) {
  using namespace bsk;

  support::ScopedClockScale clock(50.0);

  net::BskdProcess daemon;
  std::uint16_t port = 0;
  if (argc > 1) {
    port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  } else {
    daemon = net::spawn_bskd(BSK_BSKD_PATH);
    if (!daemon.valid()) {
      std::fprintf(stderr, "failed to spawn %s\n", BSK_BSKD_PATH);
      return 1;
    }
    port = daemon.port;
    std::printf("spawned bskd pid=%d port=%u\n", daemon.pid, daemon.port);
  }

  net::WorkerPoolOptions pool_opts;
  pool_opts.node_kind = "sim";
  pool_opts.node.liveness_timeout_wall_s = 1.0;
  net::WorkerPool pool({{"127.0.0.1", port}}, pool_opts);

  support::EventLog log;
  rt::FarmConfig farm_cfg;
  farm_cfg.initial_workers = 2;
  am::ManagerConfig mgr_cfg;
  mgr_cfg.period = support::SimDuration(2.0);
  auto farm_bs = bs::make_remote_farm_bs("remotefarm", farm_cfg, pool,
                                         mgr_cfg, nullptr, {}, {}, &log);
  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());

  farm.start();
  farm_bs->start_managers();
  farm_bs->manager().set_contract(am::Contract::min_throughput(0.5));

  std::jthread feeder([&farm, &daemon] {
    for (int i = 0; i < 60; ++i) {
      farm.input()->push(rt::Task::data(i, 0.5));
      if (i == 30 && daemon.pid > 0) {  // catastrophe mid-stream
        std::printf("killing bskd pid=%d\n", daemon.pid);
        ::kill(daemon.pid, SIGKILL);
      }
      support::Clock::sleep_for(support::SimDuration(0.25));
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    std::size_t done = 0;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) ++done;
    std::printf("drained %zu/60 results\n", done);
  });

  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->stop_managers();
  pool.stop_watch();

  std::printf("remote workers created: %zu, local fallbacks: %zu\n",
              pool.remote_nodes_created(), pool.fallback_nodes_created());
  std::printf("worker crashes detected: %zu\n", farm.failures());
  for (const auto& e : log.by_name("workerFail"))
    std::printf("  t=%6.1fs  workerFail x%.0f\n", e.time, e.value);

  if (daemon.pid > 0) net::stop_bskd(daemon, SIGKILL);
  return 0;
}
