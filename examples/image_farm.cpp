// Medical image processing farm — the paper's Fig. 3 application.
//
// A stream of "images" (tasks whose compute demand is drawn from a normal
// distribution, with a temporary hot spot of 3× more expensive images
// midway) is processed under a 0.6 images/s SLA. The autonomic manager
// grows the worker set to meet the contract initially and again when the
// hot spot degrades throughput — the adaptivity claims of Sec. 4.1.

#include <cstdio>

#include "bs/behavioural_skeleton.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace bsk;
  support::ScopedClockScale clock(80.0);

  sim::Platform platform;
  platform.add_machine("smp16", "local", 16);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  constexpr double kContract = 0.6;  // images per second
  constexpr std::size_t kImages = 200;

  rt::FarmConfig fc;
  fc.initial_workers = 1;
  fc.policy = rt::SchedPolicy::OnDemand;
  am::ManagerConfig mc;
  mc.period = support::SimDuration(5.0);
  mc.warmup_s = 10.0;
  mc.action_cooldown_s = 12.0;
  mc.max_workers = 12;

  auto farm_bs = bs::make_farm_bs(
      "imgfarm", fc, [] { return std::make_unique<rt::SimComputeNode>(); },
      mc, &rm, {}, rt::Placement{&platform, 0}, &log);
  farm_bs->manager().constants().set("FARM_ADD_WORKERS", 1.0);

  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->start_managers();
  farm_bs->manager().set_contract(am::Contract::min_throughput(kContract));

  // Image cost model: ~5s per image, 3x hot spot for images arriving in
  // [30, 80)s — inside the 100s emission window.
  sim::HotSpotService cost(
      std::make_unique<sim::NormalService>(5.0, 0.5, /*seed=*/7), 30.0,
      80.0, 3.0);

  std::jthread feeder([&] {
    for (std::size_t i = 0; i < kImages; ++i) {
      farm.input()->push(
          rt::Task::data(i, cost.sample(support::Clock::now())));
      support::Clock::sleep_for(support::SimDuration(0.5));  // 2 images/s
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });
  std::jthread reporter([&] {
    while (!farm.input()->closed() || farm.running_workers() > 0) {
      std::printf("t=%6.1fs  throughput=%.2f/s (SLA %.1f)  workers=%zu\n",
                  support::Clock::now(), farm.metrics().departure_rate(),
                  kContract, farm.running_workers());
      support::Clock::sleep_for(support::SimDuration(15.0));
    }
  });

  feeder.join();
  farm.wait();
  drainer.join();
  reporter.join();
  farm_bs->stop_managers();

  std::printf("\nprocessed %zu images; manager grew the farm %zu time(s):\n",
              static_cast<std::size_t>(farm.metrics().total_departures()),
              log.count("AM_imgfarm", "addWorker"));
  for (const auto& e : log.by_source("AM_imgfarm"))
    if (e.name == "addWorker")
      std::printf("  t=%6.1fs  +%.0f worker(s)\n", e.time, e.value);
  return 0;
}
