// Exploring management policies at grid scale with the DES models.
//
// The threaded runtime replays the paper's testbed; for the grids the
// paper targets, the bsk::des models run the *same* Fig. 5 policies over
// an event-driven farm — deterministic and fast enough to sweep. This
// example answers a capacity-planning question: how many manager groups
// does a 512-worker deployment need to meet its SLA within a minute of a
// demand surge?

#include <cstdio>

#include "des/hierarchy.hpp"

int main() {
  using namespace bsk::des;

  std::printf("target: 512 workers, demand 380 tasks/s, SLA 350 tasks/s\n");
  std::printf("%8s %14s %14s %12s\n", "# groups", "converge[s]",
              "mgr_cycles", "final_w");

  for (std::size_t groups : {1, 2, 8, 32, 128}) {
    HierConfig c;
    c.groups = groups;
    c.max_workers = 512;
    c.arrival_rate = 380.0;
    c.contract_lo = 350.0;
    c.service_s = 1.0;
    c.tasks = static_cast<std::uint64_t>(380.0 * 2500.0);
    const HierResult r = run_hierarchy(c);
    std::printf("%8zu %14.1f %14llu %12zu\n", groups, r.converged_at,
                static_cast<unsigned long long>(r.manager_cycles),
                r.final_workers);
  }

  std::printf("\nreading: pick the smallest group count whose converge[s]"
              " is inside your surge budget; manager cycles are the"
              " coordination cost you pay for it.\n");
  return 0;
}
