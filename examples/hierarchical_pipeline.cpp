// Hierarchical management of a three-stage pipeline — the paper's Fig. 4
// application, narrated.
//
// pipe(Producer, Farm(Filter), Consumer) under a [0.3, 0.7] tasks/s SLA.
// Four managers cooperate: the farm manager (AM_F) reports violations it
// cannot fix locally (insufficient input); the application manager (AM_A)
// reacts with rate contracts to the producer (AM_P); once input pressure
// suffices, AM_F grows the worker set itself.

#include <cstdio>

#include "bs/apps.hpp"

int main() {
  using namespace bsk;
  support::ScopedClockScale clock(80.0);

  sim::Platform platform;
  platform.add_machine("smp16", "local", 16);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  bs::Fig4Params p;  // the paper's scenario, see bs/apps.hpp
  p.tasks = 60;
  bs::Fig4App app(p, rm, log);

  std::printf("contract: %.1f-%.1f tasks/s; producer starts at %.2f/s; "
              "farm starts with %zu workers of %.0fs/task capacity\n\n",
              p.contract_lo, p.contract_hi, p.initial_rate,
              p.initial_workers, p.work_s);

  app.start();

  // Narrate the manager hierarchy live.
  std::jthread narrator([&] {
    std::size_t seen = 0;
    while (app.sink().received() < p.tasks) {
      const auto events = log.snapshot();
      for (; seen < events.size(); ++seen) {
        const auto& e = events[seen];
        if (e.name == "incRate")
          std::printf("t=%6.1fs  %s asks the producer for %.2f tasks/s\n",
                      e.time, e.source.c_str(), e.value);
        else if (e.name == "decRate")
          std::printf("t=%6.1fs  %s asks the producer to slow to %.2f/s\n",
                      e.time, e.source.c_str(), e.value);
        else if (e.name == "addWorker")
          std::printf("t=%6.1fs  %s recruits %.0f new worker(s) -> %zu\n",
                      e.time, e.source.c_str(), e.value,
                      app.farm().worker_count());
        else if (e.name == "raiseViol")
          std::printf("t=%6.1fs  %s -> parent: %s\n", e.time,
                      e.source.c_str(), e.detail.c_str());
        else if (e.name == "endStream")
          std::printf("t=%6.1fs  %s observes end of stream\n", e.time,
                      e.source.c_str());
        else if (e.name == "rebalance")
          std::printf("t=%6.1fs  %s redistributes %.0f queued task(s)\n",
                      e.time, e.source.c_str(), e.value);
      }
      support::Clock::sleep_for(support::SimDuration(2.0));
    }
  });

  app.wait();
  narrator.join();

  std::printf("\nall %zu tasks delivered; final throughput %.2f/s; "
              "cores in use %zu\n",
              app.sink().received(), app.farm().metrics().departure_rate(),
              app.cores_in_use());
  return 0;
}
