// Quickstart: a self-managing task farm in ~40 lines.
//
// Build a behavioural skeleton (farm pattern + autonomic manager), give it
// a throughput SLA, push a stream of tasks, and watch the manager grow the
// worker set until the contract is met — no tuning code in the
// application.

#include <cstdio>

#include "bs/behavioural_skeleton.hpp"

int main() {
  using namespace bsk;

  // Replay time 50× faster than wall clock (all APIs are in "sim" seconds).
  support::ScopedClockScale clock(50.0);

  // A platform to recruit worker cores from: one 8-core machine.
  sim::Platform platform = sim::Platform::testbed_smp8();
  sim::ResourceManager rm(platform);
  support::EventLog log;

  // The behavioural skeleton: farm pattern + the paper's Fig. 5 manager.
  rt::FarmConfig farm_cfg;
  farm_cfg.initial_workers = 1;
  am::ManagerConfig mgr_cfg;
  mgr_cfg.period = support::SimDuration(2.0);
  mgr_cfg.warmup_s = 5.0;
  mgr_cfg.action_cooldown_s = 6.0;
  auto farm_bs = bs::make_farm_bs(
      "quickfarm", farm_cfg,
      [] { return std::make_unique<rt::SimComputeNode>(); },  // the worker
      mgr_cfg, &rm, {}, rt::Placement{&platform, 0}, &log);

  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->start_managers();

  // The SLA: at least 1.0 task/s, the manager's problem from here on.
  farm_bs->manager().set_contract(am::Contract::min_throughput(1.0));

  // The application: 100 tasks of ~2s compute each, offered at 2/s.
  std::jthread feeder([&farm] {
    for (int i = 0; i < 100; ++i) {
      farm.input()->push(rt::Task::data(i, 2.0));
      support::Clock::sleep_for(support::SimDuration(0.5));
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    std::size_t done = 0;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) ++done;
    std::printf("drained %zu results\n", done);
  });

  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->stop_managers();

  std::printf("final workers: %zu (started with 1)\n", farm.workers_spawned());
  std::printf("manager actions:\n");
  for (const auto& e : log.by_source("AM_quickfarm"))
    if (e.name == "addWorker" || e.name == "removeWorker")
      std::printf("  t=%6.1fs  %s x%.0f\n", e.time, e.name.c_str(), e.value);
  return 0;
}
