#!/usr/bin/env bash
# Regenerate every experiment of DESIGN.md's per-experiment index.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo
  echo "===================================================================="
  echo "== $(basename "$b")"
  echo "===================================================================="
  "$b"
done
