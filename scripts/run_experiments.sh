#!/usr/bin/env bash
# Regenerate every experiment of DESIGN.md's per-experiment index.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"

# Every bench binary the build is expected to produce (bench/CMakeLists.txt).
# A missing entry aborts the run: a silently skipped experiment looks exactly
# like a regenerated one in the logs, which is worse than failing.
EXPECTED=(
  fig3_single_am
  fig4_hierarchy
  fig5_rules
  ablation_external_load
  multiconcern_twophase
  ablation_contract_split
  des_scale
  micro_runtime
  ablation_fault_tolerance
  ablation_chaos
  ablation_stability
  ablation_sched_policy
  des_fig4
  des_renegotiation
  micro_net
  micro_obs
  cluster_scale
)

# Only pick a generator for a fresh build dir; re-specifying one on an
# existing dir configured differently makes cmake abort.
if [ -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD"
else
  cmake -B "$BUILD" -G Ninja
fi
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure

missing=0
for name in "${EXPECTED[@]}"; do
  if [ ! -x "$BUILD/bench/$name" ]; then
    echo "ERROR: expected bench binary missing or not executable: $BUILD/bench/$name" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "ERROR: refusing to run with missing experiments (see above)." >&2
  exit 1
fi

for name in "${EXPECTED[@]}"; do
  b="$BUILD/bench/$name"
  echo
  echo "===================================================================="
  echo "== $name"
  echo "===================================================================="
  "$b"
done

# Distill the dataplane micro-benchmarks (E8 channel batching, E13 credit
# pipelining) into the machine-readable BENCH_dataplane.json.
echo
echo "===================================================================="
echo "== BENCH_dataplane.json"
echo "===================================================================="
"$(dirname "$0")/bench_dataplane.sh" "$BUILD"

# E1 observability capture: rerun fig3 with workers hosted in a bskd,
# archive the per-process metrics + trace files, merge them into one
# causally ordered cross-process trace, and strictly validate everything.
echo
echo "===================================================================="
echo "== E1 observability capture (obs/)"
echo "===================================================================="
"$(dirname "$0")/validate_obs.sh" "$BUILD" obs
