#!/usr/bin/env bash
# E1 observability capture + strict validation.
#
# Runs the Fig. 3 experiment with its farm workers hosted in a spawned bskd
# (--remote), capturing per-process observability artifacts into OUT_DIR:
#
#   local.metrics.prom   Prometheus text exposition of the bench process
#   local.trace.jsonl    MAPE decision spans + event log (JSONL)
#   bskd.metrics.prom    the daemon's exposition, pulled over the wire
#   bskd.trace.jsonl     the daemon's trace, pulled over the wire
#   merged.trace.jsonl   bsk-trace merge of both processes, time-ordered
#                        and causally consistent
#
# then validates: both .prom files against the exposition format, every
# JSONL line against a strict RFC 8259 parser, and that the merged trace
# actually spans both processes and contains causally linked spans.
#
# Usage: scripts/validate_obs.sh [build-dir] [out-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-obs}"

FIG3="$BUILD/bench/fig3_single_am"
TRACE="$BUILD/bsk-trace"
for bin in "$FIG3" "$TRACE"; do
  if [ ! -x "$bin" ]; then
    echo "ERROR: missing binary $bin (build first)" >&2
    exit 1
  fi
done

mkdir -p "$OUT"
rm -f "$OUT"/local.metrics.prom "$OUT"/local.trace.jsonl \
      "$OUT"/bskd.metrics.prom "$OUT"/bskd.trace.jsonl \
      "$OUT"/merged.trace.jsonl

"$FIG3" --scale 200 --remote --obs-dir "$OUT" > "$OUT/fig3_remote.log"

for f in local.metrics.prom local.trace.jsonl bskd.trace.jsonl; do
  if [ ! -f "$OUT/$f" ]; then
    echo "ERROR: capture did not produce $OUT/$f" >&2
    exit 1
  fi
done

"$TRACE" promcheck "$OUT/local.metrics.prom"
[ -f "$OUT/bskd.metrics.prom" ] && "$TRACE" promcheck "$OUT/bskd.metrics.prom"
"$TRACE" validate "$OUT/local.trace.jsonl" "$OUT/bskd.trace.jsonl"
"$TRACE" merge -o "$OUT/merged.trace.jsonl" \
  "$OUT/local.trace.jsonl" "$OUT/bskd.trace.jsonl"
"$TRACE" validate "$OUT/merged.trace.jsonl"

# The merged trace must actually span both processes and carry causally
# linked decision spans (a raiseViol joined to the reacting parent cycle).
grep -q '"proc":"local"' "$OUT/merged.trace.jsonl" || {
  echo "ERROR: merged trace has no local-process spans" >&2; exit 1; }
grep -q '"source":"bskd"' "$OUT/merged.trace.jsonl" || {
  echo "ERROR: merged trace has no bskd records" >&2; exit 1; }
grep -q '"causes":\[' "$OUT/merged.trace.jsonl" || {
  echo "ERROR: merged trace has no causally linked spans" >&2; exit 1; }
grep -q '"type":"mape_span"' "$OUT/merged.trace.jsonl" || {
  echo "ERROR: merged trace has no MAPE spans" >&2; exit 1; }

echo "obs capture valid: $(wc -l < "$OUT/merged.trace.jsonl") merged records in $OUT/"
