#!/usr/bin/env bash
# E7c fleet launcher: build the scale bench + worker daemon and run the
# real-process sweep (N real bskd on loopback per rung) into the
# machine-readable BENCH_cluster_scale.json.
#
# Usage: scripts/fleet.sh [build-dir] [out-json] [n-list]
#   build-dir  cmake build directory (default: build; configured if absent)
#   out-json   output path (default: BENCH_cluster_scale.json in repo root)
#   n-list     comma-separated fleet sizes (default: 8,32,128; the 32-rung
#              is additionally re-run with --gossip-full for the
#              delta-vs-full before/after)
#
# Each rung boots one seed plus N-1 joiners back to back (the boot storm),
# measures assembly time, late-joiner recruitment latency, and steady-state
# gossip bytes per node, and compares against the E7 DES flat-vs-k-ary
# prediction. Exit is nonzero if any fleet misses its convergence bound or
# bytes/node fails to stay sublinear in N.
#
# At N=128 the fleet holds ~260 sockets plus a dial burst; a tight
# RLIMIT_NOFILE makes the run exercise the EMFILE backoff path instead of
# the happy path, so warn early rather than fail late.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_cluster_scale.json}"
NLIST="${3:-8,32,128}"

NOFILE="$(ulimit -n)"
if [ "$NOFILE" != "unlimited" ] && [ "$NOFILE" -lt 4096 ]; then
  echo "fleet.sh: RLIMIT_NOFILE is $NOFILE; raising to 4096 for the sweep" >&2
  ulimit -n 4096 || echo "fleet.sh: could not raise fd limit" \
    "(bskd raises its own, but the bench process may hit EMFILE)" >&2
fi

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -B "$BUILD" -S "$ROOT" > /dev/null
fi
cmake --build "$BUILD" -j --target cluster_scale bskd > /dev/null

# Full-table comparison at the middle rung when the default ladder runs.
FULL_AT=0
case ",$NLIST," in *,32,*) FULL_AT=32 ;; esac

exec "$BUILD/bench/cluster_scale" \
  --n "$NLIST" --full-at "$FULL_AT" --json "$OUT"
