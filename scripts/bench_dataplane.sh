#!/usr/bin/env bash
# Dataplane before/after numbers (Issue 2): run the E8/E13 micro-benchmarks
# that exercise the batched-channel and credit-window paths, and distill the
# google-benchmark JSON into a single machine-readable BENCH_dataplane.json
# keyed by benchmark name -> {ns_per_op, items_per_second}.
#
# Usage: scripts/bench_dataplane.sh [--release] [build-dir] [out-json] [min-time]
#   --release  configure+build an optimized tree (build-release/,
#              CMAKE_BUILD_TYPE=Release) first and benchmark that; output
#              defaults to BENCH_dataplane_release.json. Release numbers are
#              the ones the shm-RTT acceptance thresholds are judged on — a
#              debug build understates the dataplane by an order of
#              magnitude.
#   build-dir  cmake build directory holding bench/ binaries (default: build,
#              or build-release with --release)
#   out-json   output path (default: BENCH_dataplane.json in the repo root,
#              or BENCH_dataplane_release.json with --release)
#   min-time   --benchmark_min_time per benchmark, e.g. 0.05s for a CI smoke
#              run (default: benchmark's own default)
#
# The script fails (non-zero) if either binary is missing, a benchmark
# errors, or the distilled JSON lacks the headline counters the acceptance
# criteria are judged on — so CI can't go green on a silently empty file.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

RELEASE=0
if [ "${1:-}" = "--release" ]; then
  RELEASE=1
  shift
fi

if [ "$RELEASE" = 1 ]; then
  BUILD="${1:-$ROOT/build-release}"
  OUT="${2:-$ROOT/BENCH_dataplane_release.json}"
else
  BUILD="${1:-$ROOT/build}"
  OUT="${2:-$ROOT/BENCH_dataplane.json}"
fi
MIN_TIME="${3:-}"

if [ "$RELEASE" = 1 ]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD" --target micro_runtime micro_net -j "$(nproc)" \
    >/dev/null
fi
# Older google-benchmark releases only accept a plain double for
# --benchmark_min_time; newer ones also take an "s" suffix. Strip the suffix
# so either form of the argument works against either library version.
MIN_TIME="${MIN_TIME%s}"

RUNTIME_BIN="$BUILD/bench/micro_runtime"
NET_BIN="$BUILD/bench/micro_net"
for b in "$RUNTIME_BIN" "$NET_BIN"; do
  if [ ! -x "$b" ]; then
    echo "ERROR: bench binary missing or not executable: $b" >&2
    echo "       (build with: cmake -B $BUILD -S $ROOT && cmake --build $BUILD -j)" >&2
    exit 1
  fi
done

TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_BENCH"' EXIT

EXTRA=()
if [ -n "$MIN_TIME" ]; then
  EXTRA+=("--benchmark_min_time=$MIN_TIME")
fi

# Only the dataplane-relevant benchmarks; the full E8/E13 suites run from
# run_experiments.sh. The filter keeps the CI smoke job fast.
"$RUNTIME_BIN" \
  --benchmark_filter='BM_ChannelPushPop|BM_ChannelBatchTransfer|BM_FarmSteadyStateThroughput' \
  --benchmark_format=json "${EXTRA[@]}" \
  > "$TMPDIR_BENCH/runtime.json"
"$NET_BIN" \
  --benchmark_filter='BM_InprocRoundTrip|BM_TcpLoopbackRoundTrip|BM_ShmRoundTrip|BM_InprocCreditThroughput|BM_TcpCreditThroughput|BM_ShmCreditThroughput' \
  --benchmark_format=json "${EXTRA[@]}" \
  > "$TMPDIR_BENCH/net.json"

# CPU model for the context block: RTT thresholds only mean something
# pinned to the silicon that produced them.
CPU_MODEL="$(awk -F: '/model name/{gsub(/^ /,"",$2); print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
export BSK_BENCH_CPU_MODEL="${CPU_MODEL:-unknown}"
export BSK_BENCH_NPROC="$(nproc 2>/dev/null || echo 0)"
if [ "$RELEASE" = 1 ]; then
  export BSK_BENCH_BUILD_TYPE="Release"
else
  export BSK_BENCH_BUILD_TYPE="${BSK_BENCH_BUILD_TYPE:-default}"
fi

python3 - "$TMPDIR_BENCH/runtime.json" "$TMPDIR_BENCH/net.json" "$OUT" <<'PY'
import json, os, sys

runtime_path, net_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

benches = {}
context = {}
for path in (runtime_path, net_path):
    with open(path) as f:
        doc = json.load(f)
    if not context:
        ctx = doc.get("context", {})
        context = {
            "date": ctx.get("date"),
            "num_cpus": ctx.get("num_cpus"),
            "library_build_type": ctx.get("library_build_type"),
            "build_type": os.environ.get("BSK_BENCH_BUILD_TYPE", "default"),
            "cpu_model": os.environ.get("BSK_BENCH_CPU_MODEL", "unknown"),
            "nproc": int(os.environ.get("BSK_BENCH_NPROC", "0") or 0),
        }
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        if "error_occurred" in b and b["error_occurred"]:
            print(f"ERROR: benchmark errored: {b['name']}: "
                  f"{b.get('error_message', '')}", file=sys.stderr)
            sys.exit(1)
        # Normalize all times to nanoseconds per op.
        unit = b.get("time_unit", "ns")
        mult = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        entry = {"ns_per_op": b["real_time"] * mult}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        benches[b["name"]] = entry

# Headline claims this PR is judged on. Their absence means the benchmark
# binaries no longer cover the dataplane and the file would be misleading.
required = [
    "BM_ChannelPushPop",
    "BM_ChannelBatchTransfer/1",
    "BM_ChannelBatchTransfer/64",
    "BM_FarmSteadyStateThroughput/4",
    "BM_InprocCreditThroughput/1",
    "BM_InprocCreditThroughput/4",
    "BM_TcpCreditThroughput/1",
    "BM_TcpCreditThroughput/4",
    "BM_TcpLoopbackRoundTrip",
    "BM_ShmRoundTrip",
    "BM_ShmCreditThroughput/1",
    "BM_ShmCreditThroughput/4",
]
missing = [k for k in required if k not in benches]
if missing:
    print(f"ERROR: required benchmarks missing from output: {missing}",
          file=sys.stderr)
    sys.exit(1)

def ips(name):
    return benches[name].get("items_per_second", 0.0)

def us(name):
    return benches[name]["ns_per_op"] / 1e3

summary = {
    "batched_transfer_speedup_vs_per_item":
        round(ips("BM_ChannelBatchTransfer/64") /
              max(ips("BM_ChannelBatchTransfer/1"), 1e-9), 2),
    "inproc_credit4_speedup_vs_window1":
        round(ips("BM_InprocCreditThroughput/4") /
              max(ips("BM_InprocCreditThroughput/1"), 1e-9), 2),
    "tcp_credit4_speedup_vs_window1":
        round(ips("BM_TcpCreditThroughput/4") /
              max(ips("BM_TcpCreditThroughput/1"), 1e-9), 2),
    "tcp_loopback_rtt_us": round(us("BM_TcpLoopbackRoundTrip"), 3),
    "shm_rtt_us": round(us("BM_ShmRoundTrip"), 3),
    "shm_vs_tcp_rtt_speedup":
        round(us("BM_TcpLoopbackRoundTrip") /
              max(us("BM_ShmRoundTrip"), 1e-9), 2),
}

with open(out_path, "w") as f:
    json.dump({"context": context, "summary": summary, "benchmarks": benches},
              f, indent=2, sort_keys=True)
    f.write("\n")

print(f"wrote {out_path}")
for k, v in summary.items():
    unit = "us" if k.endswith("_us") else "x"
    print(f"  {k}: {v}{unit}")
PY
