// Experiment E7 — management at grid scale (flat vs hierarchical).
//
// The paper positions hierarchical management as the path to grid/cloud
// scale (Secs. 1, 3.1) but evaluates only a four-manager hierarchy on an
// 8-core SMP. This DES ablation runs the same Fig. 5 policies over
// central-queue farm models at 16..1024 workers, comparing a single flat
// manager against g-group hierarchies with a 1/g contract share each.
//
// Expected shape: convergence time of the flat manager grows linearly with
// the required worker count (it can only add a constant number per control
// cycle); hierarchies converge in ~1/g of the time; per-manager span stays
// bounded.

#include <cstdio>

#include "bench/args.hpp"
#include "des/hierarchy.hpp"

using namespace bsk::des;

int main(int argc, char** argv) {
  const auto tasks_scale =
      bsk::benchutil::arg_double(argc, argv, "--tasks-scale", 1.0);

  std::printf("== E7: flat vs hierarchical management at scale (DES) ==\n");
  std::printf("%8s %8s %12s %14s %12s %8s %10s %12s\n", "# workers", "groups",
              "converge[s]", "mgr_cycles", "adds", "viols", "final_w",
              "events");

  const std::size_t worker_scales[] = {16, 64, 256, 1024};
  const std::size_t group_counts[] = {1, 4, 16, 64};

  for (std::size_t w : worker_scales) {
    for (std::size_t g : group_counts) {
      if (g > w / 4) continue;  // keep >= 4 workers per group
      HierConfig c;
      c.groups = g;
      c.max_workers = w;
      c.service_s = 1.0;
      // Demand ~75% of max capacity; SLA at 70%.
      c.arrival_rate = 0.75 * static_cast<double>(w);
      c.contract_lo = 0.70 * static_cast<double>(w);
      // The flat manager needs ~w/2 cooldown periods to grow; keep the
      // stream alive long enough for every configuration to converge.
      c.tasks = static_cast<std::uint64_t>(
          tasks_scale * c.arrival_rate *
          (60.0 + 6.0 * static_cast<double>(w)));
      const HierResult r = run_hierarchy(c);
      std::printf("%8zu %8zu %12.1f %14llu %12llu %8llu %10zu %12llu\n", w, g,
                  r.converged_at,
                  static_cast<unsigned long long>(r.manager_cycles),
                  static_cast<unsigned long long>(r.adds),
                  static_cast<unsigned long long>(r.violations),
                  r.final_workers,
                  static_cast<unsigned long long>(r.events_executed));
    }
  }

  std::printf("\n# expected shape: converge[s] for groups=1 grows ~linearly"
              " with workers; more groups divide it; a -1 means the SLA was"
              " never met before the stream ended.\n");
  return 0;
}
