// Experiment E6 — contract-splitting heuristics (Sec. 3.1's P_spl).
//
// The paper proposes splitting a pipeline's parallelism-degree SLA
// "proportionally, depending on the relative computational weight of the
// stages". This ablation compares the uniform and weight-proportional
// splitters on heterogeneous pipelines: for each stage, throughput is
// modelled as par_degree / stage_work (the functional-replication model);
// pipeline throughput is the minimum over stages. The weighted splitter
// should win whenever the stages are unbalanced, and tie otherwise.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "am/contract.hpp"

using namespace bsk::am;

namespace {

/// Modelled pipeline throughput for one assignment of degrees.
double modelled_throughput(const std::vector<double>& work,
                           const std::vector<Contract>& subs) {
  double t = 1e30;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const auto k = static_cast<double>(subs[i].par_degree.value_or(1));
    t = std::min(t, k / work[i]);
  }
  return t;
}

void row(const char* name, const std::vector<double>& work,
         std::size_t total_degree) {
  const Contract c = Contract::parallelism(total_degree);
  const auto uniform = split_for_pipeline(c, work.size());
  const auto weighted = split_for_pipeline(c, work.size(), work);

  auto degrees = [](const std::vector<Contract>& subs) {
    std::string s;
    for (const Contract& x : subs)
      s += (s.empty() ? "" : "/") + std::to_string(*x.par_degree);
    return s;
  };

  const double tu = modelled_throughput(work, uniform);
  const double tw = modelled_throughput(work, weighted);
  std::printf("%-28s %8zu   %-12s %8.3f   %-12s %8.3f   %6.2fx\n", name,
              total_degree, degrees(uniform).c_str(), tu,
              degrees(weighted).c_str(), tw, tw / tu);
}

}  // namespace

int main() {
  std::printf("== E6: pipeline par-degree SLA splitting — uniform vs"
              " weight-proportional ==\n");
  std::printf("%-28s %8s   %-12s %8s   %-12s %8s   %6s\n", "# stage weights",
              "degree", "uniform", "T_u", "weighted", "T_w", "gain");

  row("balanced 1:1:1", {1, 1, 1}, 12);
  row("mild skew 1:2:1", {1, 2, 1}, 12);
  row("strong skew 1:6:1", {1, 6, 1}, 16);
  row("two-stage 1:3", {1, 3}, 8);
  row("long tail 1:1:1:1:8", {1, 1, 1, 1, 8}, 24);
  row("inverse skew 4:1:1", {4, 1, 1}, 12);
  row("tiny budget, skew 1:5", {1, 5}, 3);

  std::printf("\n# expected shape: gain = 1.0 on balanced stages, grows with"
              " skew (the paper's footnote-3 heuristic).\n");
  return 0;
}
