// Experiment E2b — the Fig. 4 protocol replayed on the deterministic DES
// kernel (same Fig. 5 rule text, event-driven mechanisms).
//
// Two configurations are printed: the paper-shaped run (long sensor
// window: the incRate ladder overshoots, decRate walks it back, the farm
// grows twice) and a 100× grid-scale run of the identical protocol —
// the regime the threaded runtime cannot replay in reasonable wall time.

#include <cstdio>

#include "des/pipeline_model.hpp"

using namespace bsk::des;

namespace {

void print_run(const char* title, const DesFig4Params& p) {
  const DesFig4Result r = run_fig4_model(p);
  std::printf("\n== %s ==\n", title);
  std::printf("tasks=%llu  rate0=%.2f  work=%.0fs  workers0=%zu  "
              "contract=[%.2g,%.2g]\n",
              static_cast<unsigned long long>(p.tasks), p.initial_rate,
              p.work_s, p.initial_workers, p.contract_lo, p.contract_hi);
  for (const DesEvent& e : r.events) {
    if (e.name == "raiseViol" && r.count("AM_F", "raiseViol") > 12)
      continue;  // keep long traces readable: violations are summarized
    std::printf("%8.1f  %-5s %-12s %8.2f\n", e.t, e.source.c_str(),
                e.name.c_str(), e.value);
  }
  std::printf("# summary: raiseViol=%zu incRate=%zu decRate=%zu "
              "addWorker=%zu endStream@%.1f converged@%.1f processed=%llu "
              "final_workers=%zu final_rate=%.2f\n",
              r.count("AM_F", "raiseViol"), r.count("AM_A", "incRate"),
              r.count("AM_A", "decRate"), r.count("AM_F", "addWorker"),
              r.end_stream_at, r.converged_at,
              static_cast<unsigned long long>(r.processed), r.final_workers,
              r.final_producer_rate);
}

}  // namespace

int main() {
  std::printf("== E2b: Fig. 4 hierarchy protocol on the DES kernel ==\n");

  DesFig4Params paper;
  paper.window_s = 20.0;
  paper.warmup_s = 20.0;
  print_run("paper-scale (deterministic replay)", paper);

  DesFig4Params grid;
  grid.tasks = 80000;
  grid.initial_rate = 20.0;
  grid.work_s = 14.0;
  grid.contract_lo = 30.0;
  grid.contract_hi = 70.0;
  grid.initial_workers = 200;
  grid.max_workers = 1200;
  grid.add_per_step = 200;
  grid.window_s = 20.0;
  grid.warmup_s = 20.0;
  print_run("grid-scale (100x, same protocol)", grid);

  std::printf("\n# expected shape: identical event ordering at both scales"
              " (violation -> incRate ladder -> addWorker -> [decRate] ->"
              " endStream); every run bit-identical across invocations.\n");
  return 0;
}
