// Experiment E5 — the Sec. 3.2 multi-concern scenario.
//
// A farm under a performance contract must recruit workers from
// untrusted_ip_domain_A. Three configurations:
//   naive      – AM_perf commits alone; a reactive AM_sec secures links on
//                its next cycle → a measurable plaintext-exposure window;
//   two-phase  – intents pass through the GM; AM_sec demands pre-secured
//                instantiation → zero insecure messages, at SSL cost;
//   veto       – security forbids untrusted placements outright → no
//                exposure but the performance contract may starve;
//   single-mgr – the paper's SM structuring: ONE manager holds the merged
//                contract (merge_contracts) and both rule sets; securing
//                happens in the same control cycle as the add, shrinking
//                but not eliminating the exposure window.
//
// Also reports the raw SSL throughput cost (plain vs secured links), the
// overhead the paper's security work (ref. [31]) quantifies.

#include <cstdio>

#include "am/builtin_rules.hpp"
#include "am/multiconcern.hpp"
#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/behavioural_skeleton.hpp"

using namespace bsk;

namespace {

struct Result {
  std::size_t workers_spawned = 0;
  std::uint64_t insecure = 0;
  std::uint64_t total_msgs = 0;
  std::size_t vetoes = 0;
  double makespan_s = 0.0;
  std::size_t prepare_secure = 0;
};

enum class Mode { Naive, TwoPhase, Veto, SingleManager };

Result run(Mode mode) {
  sim::Platform platform = sim::Platform::mixed_grid(0, 2, 4);
  platform.add_domain(sim::Domain{"hq", true});
  const sim::MachineId hq = platform.add_machine("hq0", "hq", 1);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  rt::FarmConfig fc;
  fc.initial_workers = 1;
  fc.rate_window = support::SimDuration(4.0);

  am::ManagerConfig mc;
  mc.period = support::SimDuration(1.0);
  mc.max_workers = 6;
  mc.warmup_s = 2.0;

  auto farm_bs = bs::make_farm_bs(
      "farm", fc, [] { return std::make_unique<rt::SimComputeNode>(); }, mc,
      &rm, {}, rt::Placement{&platform, hq}, &log);

  // MM structuring: a dedicated (slower) security manager hierarchy.
  am::ManagerConfig sec_cfg = mc;
  sec_cfg.period = support::SimDuration(4.0);
  am::AutonomicManager sec_am("AM_sec", farm_bs->abc(), sec_cfg, &log);
  sec_am.load_rules(am::security_rules());

  am::GeneralManager gm("GM", &log);
  am::SecurityParticipant sec_part(
      am::SecurityParticipant::Options{mode == Mode::Veto});
  if (mode == Mode::TwoPhase || mode == Mode::Veto) {
    gm.register_participant(sec_part, 100);
    farm_bs->abc().set_commit_gate(gm.gate("AM_perf"));
  }

  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->manager().start();
  if (mode == Mode::SingleManager) {
    // SM structuring: one manager, both rule sets, merged super-contract.
    farm_bs->manager().load_rules(am::security_rules());
    farm_bs->manager().set_contract(am::merge_contracts(
        {am::Contract::min_throughput(1.5), am::Contract::secure()}));
  } else {
    sec_am.start();
    farm_bs->manager().set_contract(am::Contract::min_throughput(1.5));
    sec_am.set_contract(am::Contract::secure());
  }

  const auto t0 = support::Clock::now();
  std::jthread feeder([&farm] {
    for (int i = 0; i < 80; ++i) {
      if (!farm.input()->push(rt::Task::data(i, 1.0))) return;
      support::Clock::sleep_for(support::SimDuration(0.3));
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });
  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->manager().stop();
  sec_am.stop();

  Result r;
  r.workers_spawned = farm.workers_spawned();
  r.insecure = farm.insecure_messages();
  r.vetoes = gm.vetoes_issued();
  r.makespan_s = support::Clock::now() - t0;
  r.prepare_secure = log.count("GM", "prepareSecure");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::arg_double(argc, argv, "--scale", 60.0);
  support::ScopedClockScale clock(scale);

  std::printf("== E5: performance vs security — commit protocols ==\n");
  std::printf("%-10s %9s %14s %8s %14s %12s\n", "# mode", "workers",
              "insecure_msgs", "vetoes", "prepareSecure", "makespan[s]");

  const struct {
    Mode mode;
    const char* name;
  } modes[] = {{Mode::Naive, "naive"},
               {Mode::SingleManager, "single-mgr"},
               {Mode::TwoPhase, "two-phase"},
               {Mode::Veto, "veto"}};
  for (const auto& m : modes) {
    const Result r = run(m.mode);
    std::printf("%-10s %9zu %14llu %8zu %14zu %12.1f\n", m.name,
                r.workers_spawned,
                static_cast<unsigned long long>(r.insecure), r.vetoes,
                r.prepare_secure, r.makespan_s);
  }

  std::printf("\n# expected shape: insecure messages naive >= single-mgr >"
              " two-phase = veto = 0; two-phase keeps full worker growth;"
              " veto starves the performance contract (fewer workers,"
              " longer makespan).\n");
  return 0;
}
