// Experiment E3 — the paper's Fig. 5 rule file.
//
// Parses the farm-manager policy in the paper's own Drools-flavoured
// syntax (bindings, ManagersConstants.* qualifiers, fireOperation calls)
// and demonstrates each of the five rules firing in exactly its scenario,
// printing rule → monitored state → operations executed.

#include <cstdio>
#include <vector>

#include "am/builtin_rules.hpp"
#include "rules/engine.hpp"
#include "rules/parser.hpp"

namespace {

class PrintSink : public bsk::rules::OperationSink {
 public:
  void fire_operation(const std::string& op, const std::string& data) override {
    ops.push_back(data.empty() ? op : op + "(" + data + ")");
  }
  std::vector<std::string> ops;
};

struct Scenario {
  const char* name;
  double arrival, departure, nworkers, qvar;
};

}  // namespace

int main() {
  using namespace bsk::rules;

  // The exact rule set of the paper's Fig. 5 (see am::farm_rules()).
  std::vector<Rule> parsed = parse_rules(bsk::am::farm_rules());
  std::printf("== Fig. 5 rule file: parsed %zu rules ==\n", parsed.size());
  for (const Rule& r : parsed) std::printf("  rule \"%s\"\n", r.name().c_str());

  Engine engine;
  for (Rule& r : parsed) engine.add_rule(std::move(r));

  // The Fig. 4 contract: 0.3–0.7 tasks/s on 2..8 workers.
  ConstantTable consts;
  consts.set("FARM_LOW_PERF_LEVEL", 0.3);
  consts.set("FARM_HIGH_PERF_LEVEL", 0.7);
  consts.set("FARM_MIN_NUM_WORKERS", 1.0);
  consts.set("FARM_MAX_NUM_WORKERS", 8.0);
  consts.set("FARM_MAX_UNBALANCE", 9.0);
  consts.set("FARM_ADD_WORKERS", 2.0);

  const Scenario scenarios[] = {
      {"input pressure too low (paper phase 1)", 0.1, 0.1, 2, 0},
      {"input pressure too high (overshoot)", 0.9, 0.5, 4, 0},
      {"throughput low, pressure OK (paper phase 2)", 0.5, 0.2, 2, 0},
      {"throughput above contract", 0.5, 0.9, 4, 0},
      {"queues unbalanced (paper final phase)", 0.5, 0.5, 4, 25},
      {"contract satisfied, balanced", 0.5, 0.5, 4, 0},
  };

  std::printf("\n%-45s %-28s %s\n", "# monitored state", "rules fired",
              "operations");
  for (const Scenario& s : scenarios) {
    WorkingMemory wm;
    wm.set("ArrivalRateBean", s.arrival);
    wm.set("DepartureRateBean", s.departure);
    wm.set("NumWorkerBean", s.nworkers);
    wm.set("QuequeVarianceBean", s.qvar);
    PrintSink sink;
    const auto fired = engine.run_cycle(wm, consts, sink);

    std::string rules_s, ops_s;
    for (const auto& f : fired) rules_s += (rules_s.empty() ? "" : ", ") + f;
    for (const auto& o : sink.ops) ops_s += (ops_s.empty() ? "" : ", ") + o;
    std::printf("%-45s %-28s %s\n", s.name,
                rules_s.empty() ? "(none)" : rules_s.c_str(),
                ops_s.empty() ? "(none)" : ops_s.c_str());
  }
  return 0;
}
