// Experiment E11 (ablation) — farm scheduling policy under skewed service
// times.
//
// The paper's farm dispatches via a scheduler policy and compensates skew
// with explicit BALANCE_LOAD actions. This ablation compares, on a
// heavy-tailed (Pareto) workload:
//
// What matters under work-skew is *binding time*: with deep worker queues
// every policy commits tasks early and one unlucky worker ends up with the
// heavy tail; with shallow queues (capacity 2) dispatch happens near
// execution time (capacity 1 = pure pull), and shortest-queue
// (on-demand) approaches the ideal.
// A count-based BALANCE_LOAD pass cannot help here — the queues are equal
// in *length*, unequal in *work* — an honest limitation of the paper's
// rebalancing actuator (it targets count imbalance after reconfiguration,
// not service-time skew).

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/args.hpp"
#include "rt/farm.hpp"
#include "sim/workload.hpp"
#include "support/clock.hpp"

using namespace bsk;

namespace {

struct Row {
  double makespan = 0.0;
  double peak_variance = 0.0;
};

Row run(rt::SchedPolicy policy, bool periodic_rebalance,
        std::size_t queue_capacity, const std::vector<double>& work) {
  rt::FarmConfig cfg;
  cfg.initial_workers = 4;
  cfg.policy = policy;
  cfg.worker_queue_capacity = queue_capacity;
  rt::Farm f("f", cfg, [] {
    return std::make_unique<rt::LambdaNode>([](rt::Task t) {
      support::Clock::sleep_for(support::SimDuration(t.work_s));
      return std::optional<rt::Task>{std::move(t)};
    });
  });

  const auto t0 = support::Clock::now();
  f.start();
  std::jthread drainer([&f] {
    rt::Task t;
    while (f.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });

  Row r;
  std::jthread balancer([&] {
    while (!f.input()->closed() || f.running_workers() > 0) {
      r.peak_variance = std::max(r.peak_variance, f.queue_variance());
      if (periodic_rebalance) f.rebalance();
      support::Clock::sleep_for(support::SimDuration(2.0));
    }
  });

  for (std::size_t i = 0; i < work.size(); ++i)
    f.input()->push(rt::Task::data(i, work[i]));
  f.input()->close();
  f.wait();
  balancer.join();
  r.makespan = support::Clock::now() - t0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::arg_double(argc, argv, "--scale", 100.0);
  support::ScopedClockScale clock(scale);

  // Heavy-tailed workload, identical for every policy.
  sim::ParetoService pareto(0.2, 1.3, /*seed=*/17);
  std::vector<double> work;
  double total = 0.0;
  for (int i = 0; i < 300; ++i) {
    work.push_back(std::min(pareto.sample(0.0), 8.0));  // cap the tail
    total += work.back();
  }

  std::printf("== E11: scheduling policy under heavy-tailed service times"
              " ==\n");
  std::printf("300 Pareto(0.2,1.3) tasks, total work %.1fs over 4 workers"
              " (ideal makespan %.1fs)\n\n",
              total, total / 4.0);
  std::printf("%-24s %12s %14s\n", "# policy", "makespan[s]", "peak_qvar");

  const std::size_t deep = work.size() + 8;
  const Row rr_deep = run(rt::SchedPolicy::RoundRobin, false, deep, work);
  std::printf("%-24s %12.1f %14.1f\n", "rr deep-queues", rr_deep.makespan,
              rr_deep.peak_variance);
  const Row rb_deep = run(rt::SchedPolicy::RoundRobin, true, deep, work);
  std::printf("%-24s %12.1f %14.1f\n", "rr deep+rebalance",
              rb_deep.makespan, rb_deep.peak_variance);
  const Row rr_sh = run(rt::SchedPolicy::RoundRobin, false, 1, work);
  std::printf("%-24s %12.1f %14.1f\n", "rr shallow-queues", rr_sh.makespan,
              rr_sh.peak_variance);
  const Row od_sh = run(rt::SchedPolicy::OnDemand, false, 1, work);
  std::printf("%-24s %12.1f %14.1f\n", "on-demand shallow",
              od_sh.makespan, od_sh.peak_variance);

  std::printf("\n# expected shape: on-demand shallow ~= ideal < rr shallow"
              " < rr deep ~= rr deep+rebalance (count-based rebalancing is"
              " blind to work skew: equal lengths, unequal work).\n");
  return 0;
}
