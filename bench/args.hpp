#pragma once
// Tiny flag parsing for the bench binaries: "--name value" pairs.

#include <cstdlib>
#include <cstring>
#include <string>

namespace bsk::benchutil {

inline const char* arg_raw(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return nullptr;
}

inline double arg_double(int argc, char** argv, const char* name,
                         double fallback) {
  const char* v = arg_raw(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline long arg_long(int argc, char** argv, const char* name, long fallback) {
  const char* v = arg_raw(argc, argv, name);
  return v != nullptr ? std::atol(v) : fallback;
}

inline std::string arg_string(int argc, char** argv, const char* name,
                              const std::string& fallback = {}) {
  const char* v = arg_raw(argc, argv, name);
  return v != nullptr ? std::string(v) : fallback;
}

inline bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

}  // namespace bsk::benchutil
