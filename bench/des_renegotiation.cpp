// Experiment E12 (extension) — dynamic contract renegotiation.
//
// The paper's P_spl splits a contract once and fixes the shares; Sec. 3.1
// notes the general splitting problem is open. This ablation shows where
// the static split breaks: heterogeneous groups (one at 1/4 speed) under
// an equal share. The crippled group saturates below its share and,
// because the dispatcher keeps feeding it equally, accumulates a backlog
// that drains for thousands of seconds after the stream ends. The dynamic
// variant periodically re-splits — a saturated group keeps only what it
// delivers, the deficit (and the dispatch weights) move to the others.

#include <cstdio>

#include "des/hierarchy.hpp"

using namespace bsk::des;

namespace {

void row(const char* label, bool renegotiate,
         const std::vector<double>& speeds) {
  HierConfig c;
  c.groups = 4;
  c.max_workers = 64;
  c.arrival_rate = 40.0;
  c.contract_lo = 36.0;
  c.service_s = 1.0;
  c.tasks = 40000;
  c.group_speeds = speeds;
  c.exponential_service = true;
  c.renegotiate = renegotiate;
  const HierResult r = run_hierarchy(c);
  std::printf("%-28s %12.1f %12.1f %10.2f %8llu %10zu\n", label,
              r.finished_at, r.converged_at, r.sla_fraction,
              static_cast<unsigned long long>(r.renegotiations),
              r.final_workers);
}

}  // namespace

int main() {
  std::printf("== E12: static vs renegotiated contract splitting (DES) ==\n");
  std::printf("4 groups x 16 workers; offered 40 tasks/s of 1s work; "
              "aggregate SLA >= 36/s; stream = 40000 tasks (1000s)\n\n");
  std::printf("%-28s %12s %12s %10s %8s %10s\n", "# configuration",
              "makespan[s]", "converge[s]", "sla_frac", "renegs", "workers");

  row("homogeneous, static", false, {1, 1, 1, 1});
  row("homogeneous, renegotiated", true, {1, 1, 1, 1});
  row("one slow group, static", false, {1, 1, 1, 0.25});
  row("one slow group, renegotiated", true, {1, 1, 1, 0.25});
  row("two slow groups, static", false, {1, 1, 0.25, 0.25});
  row("two slow groups, renegotiated", true, {1, 1, 0.25, 0.25});

  std::printf("\n# expected shape: identical on homogeneous groups (nothing"
              " to renegotiate); on heterogeneous groups the static split's"
              " makespan balloons with the slow groups' backlog while the"
              " renegotiated split stays near the 1000s stream length with"
              " a high in-SLA fraction.\n");
  return 0;
}
