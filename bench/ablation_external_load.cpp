// Experiment E4 — adaptation to external load (Sec. 4.2's claim:
// "autonomic adaptation has also been achieved in the case of additional
// (external) load upon the cores used").
//
// The Fig. 3 farm runs under a 0.6 task/s SLA; midway, external processes
// load the machine (fair-share slowdown 1/(1+load)). Expected shape: the
// delivered rate dips below the contract when the load arrives, the
// manager reacts with addWorker steps, and the contract is re-established
// despite the slower cores.

#include <cstdio>

#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/apps.hpp"

int main(int argc, char** argv) {
  using namespace bsk;
  const double scale = benchutil::arg_double(argc, argv, "--scale", 60.0);
  support::ScopedClockScale clock(scale);

  // External load 1.5 (≈2.5× slowdown) between t=60s and t=160s.
  sim::Platform platform;
  sim::LoadTrace trace;
  trace.burst(60.0, 160.0, 1.5);
  platform.add_machine("smp16", "local", 16, 1.0, trace);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  bs::Fig3Params p;
  p.tasks = 400;  // keep the source alive well past the burst window
  p.max_workers = 12;
  bs::Fig3App app(p, rm, log);

  benchutil::Sampler sampler(
      support::SimDuration(2.0), [&] {
        const auto t = support::Clock::now();
        return std::vector<double>{
            app.farm().metrics().departure_rate(),
            p.contract_min_rate,
            platform.effective_speed(0, t),
            static_cast<double>(app.farm().running_workers()),
        };
      });

  std::printf("== E4: external load burst (1.5) during [60,160)s, SLA %.1f/s"
              " ==\n", p.contract_min_rate);
  app.start();
  sampler.start();
  app.wait();
  sampler.stop();

  benchutil::print_series(
      "throughput vs contract, core speed, workers",
      {"throughput", "contract", "core_speed", "workers"},
      sampler.samples());
  benchutil::print_events("farm manager events", log, "AM_farm");

  // Shape summary: workers before, during, after the burst.
  std::size_t before = 0, during = 0;
  for (const auto& s : sampler.samples()) {
    if (s.t < 60.0) before = std::max(before, (std::size_t)s.values[3]);
    else if (s.t < 160.0) during = std::max(during, (std::size_t)s.values[3]);
  }
  std::printf("\n# peak workers before burst: %zu, during burst: %zu "
              "(adaptation = during > before), addWorker events: %zu\n",
              before, during, log.count("AM_farm", "addWorker"));
  return 0;
}
