// Experiment E8 — runtime micro-costs (google-benchmark).
//
// The mechanisms behind the managers' actuators and sensors: channel and
// SPSC transfer costs, rule-engine agenda cycles, .brl parsing, farm
// reconfiguration latency (the cost visible as the sensor blackout in
// Fig. 4), and contract splitting.

#include <benchmark/benchmark.h>

#include "am/builtin_rules.hpp"
#include "am/contract.hpp"
#include "rules/engine.hpp"
#include "rules/parser.hpp"
#include "rt/farm.hpp"
#include "support/channel.hpp"
#include "support/clock.hpp"
#include "support/spsc_ring.hpp"
#include "support/stats.hpp"

namespace {

using namespace bsk;

void BM_ChannelPushPop(benchmark::State& state) {
  support::Channel<int> ch(1024);
  for (auto _ : state) {
    ch.push(1);
    int v;
    benchmark::DoNotOptimize(ch.pop(v));
  }
}
BENCHMARK(BM_ChannelPushPop);

// Producer/consumer stream through a bounded channel. Arg is the batch
// size: 1 uses the per-item push/pop path (one lock + one CV notify per
// task — the pre-batching dataplane), larger values move whole batches via
// push_n/pop_n under a single lock acquisition. The items/s ratio between
// Arg(1) and the batched runs is the dataplane speedup BENCH_dataplane.json
// tracks.
void BM_ChannelBatchTransfer(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  support::Channel<int> ch(1024);
  std::jthread consumer([&ch, batch] {
    if (batch == 1) {
      int v;
      while (ch.pop(v) == support::ChannelStatus::Ok)
        benchmark::DoNotOptimize(v);
    } else {
      std::vector<int> buf;
      buf.reserve(batch);
      while (ch.pop_n(buf, batch) == support::ChannelStatus::Ok) {
        benchmark::DoNotOptimize(buf.data());
        buf.clear();
      }
    }
  });
  std::int64_t items = 0;
  if (batch == 1) {
    for (auto _ : state) {
      ch.push(1);
      ++items;
    }
  } else {
    std::vector<int> out;
    for (auto _ : state) {
      out.assign(batch, 1);
      ch.push_n(out);
      items += static_cast<std::int64_t>(batch);
    }
  }
  ch.close();
  state.SetItemsProcessed(items);
}
BENCHMARK(BM_ChannelBatchTransfer)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

void BM_SpscPushPop(benchmark::State& state) {
  support::SpscRing<int> q(1024);
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_SpscPushPop);

void BM_RateEstimatorRecord(benchmark::State& state) {
  support::RateEstimator r(support::SimDuration(10.0));
  double t = 0.0;
  for (auto _ : state) {
    r.record(t);
    t += 0.01;
  }
}
BENCHMARK(BM_RateEstimatorRecord);

void BM_RuleEngineCycle(benchmark::State& state) {
  rules::Engine engine;
  for (rules::Rule& r : rules::parse_rules(am::farm_rules()))
    engine.add_rule(std::move(r));
  rules::ConstantTable consts;
  consts.set("FARM_LOW_PERF_LEVEL", 0.3);
  consts.set("FARM_HIGH_PERF_LEVEL", 0.7);
  consts.set("FARM_MIN_NUM_WORKERS", 1.0);
  consts.set("FARM_MAX_NUM_WORKERS", 8.0);
  consts.set("FARM_MAX_UNBALANCE", 9.0);
  consts.set("FARM_ADD_WORKERS", 2.0);
  rules::WorkingMemory wm;
  wm.set("ArrivalRateBean", 0.5);
  wm.set("DepartureRateBean", 0.5);
  wm.set("NumWorkerBean", 4.0);
  wm.set("QuequeVarianceBean", 0.0);
  class NullSink : public rules::OperationSink {
    void fire_operation(const std::string&, const std::string&) override {}
  } sink;
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.run_cycle(wm, consts, sink));
}
BENCHMARK(BM_RuleEngineCycle);

void BM_ParseFig5Rules(benchmark::State& state) {
  const std::string text = am::farm_rules();
  for (auto _ : state)
    benchmark::DoNotOptimize(rules::parse_rules(text));
}
BENCHMARK(BM_ParseFig5Rules);

void BM_ContractSplitPipeline(benchmark::State& state) {
  const am::Contract c =
      am::Contract::throughput_range(0.3, 0.7).with_par_degree(64);
  const std::vector<double> weights{1, 3, 2, 1, 5, 2, 1, 1};
  for (auto _ : state)
    benchmark::DoNotOptimize(am::split_for_pipeline(c, 8, weights));
}
BENCHMARK(BM_ContractSplitPipeline);

void BM_FarmAddRemoveWorker(benchmark::State& state) {
  support::ScopedClockScale fast(1e6);
  rt::FarmConfig cfg;
  cfg.initial_workers = 2;
  rt::Farm f("f", cfg, [] {
    return std::make_unique<rt::LambdaNode>(
        [](rt::Task t) { return std::optional<rt::Task>{std::move(t)}; });
  });
  f.start();
  for (auto _ : state) {
    f.add_worker();
    benchmark::DoNotOptimize(f.remove_worker());
  }
  f.input()->close();
  f.wait();
}
BENCHMARK(BM_FarmAddRemoveWorker)->Unit(benchmark::kMicrosecond);

void BM_FarmSteadyStateThroughput(benchmark::State& state) {
  support::ScopedClockScale fast(1e6);
  const auto workers = static_cast<std::size_t>(state.range(0));
  rt::FarmConfig cfg;
  cfg.initial_workers = workers;
  rt::Farm f("f", cfg, [] {
    return std::make_unique<rt::LambdaNode>(
        [](rt::Task t) { return std::optional<rt::Task>{std::move(t)}; });
  });
  f.start();
  std::jthread drainer([&f] {
    rt::Task t;
    while (f.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });
  std::uint64_t id = 0;
  for (auto _ : state) f.input()->push(rt::Task::data(id++, 0.0));
  state.SetItemsProcessed(static_cast<std::int64_t>(id));
  f.input()->close();
  f.wait();
}
BENCHMARK(BM_FarmSteadyStateThroughput)->Arg(1)->Arg(4)->Arg(8);

void BM_Rebalance(benchmark::State& state) {
  support::ScopedClockScale fast(1e6);
  rt::FarmConfig cfg;
  cfg.initial_workers = 4;
  std::atomic<bool> gate{false};
  rt::Farm f("f", cfg, [&gate] {
    return std::make_unique<rt::LambdaNode>([&gate](rt::Task t) {
      while (!gate.load()) std::this_thread::yield();
      return std::optional<rt::Task>{std::move(t)};
    });
  });
  f.start();
  for (int i = 0; i < 512; ++i) f.input()->push(rt::Task::data(i, 0.0));
  for (auto _ : state) benchmark::DoNotOptimize(f.rebalance());
  gate.store(true);
  f.input()->close();
  std::jthread drainer([&f] {
    rt::Task t;
    while (f.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });
  f.wait();
}
BENCHMARK(BM_Rebalance)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
