// Experiment E14 — instrumentation overhead (google-benchmark).
//
// The obs layer's contract is "always-on costs nothing you can measure":
// counters, gauges, and histograms are sharded relaxed atomics behind a
// single relaxed-load enable gate, and the NodeMetrics sensors the control
// loop depends on are lock-free rate windows. This benchmark prices both
// claims:
//
//   * BM_DataplaneBatch/obs={0,1} — the farm's batched channel hot path
//     (push_n/pop_n producer/consumer) with per-batch instrumentation
//     exactly as rt::Farm records it (one counter add, one histogram
//     observe, one gauge store per batch, NodeMetrics per task). The
//     items/s delta between obs=1 and obs=0 is the dataplane overhead
//     EXPERIMENTS.md bounds at <= 2%.
//   * BM_Counter/BM_Histogram/BM_RateWindow — per-primitive unit costs,
//     enabled and disabled (the disabled numbers price the gate itself).
//
// The obs=0 runs flip obs::set_enabled(false), which is what BSK_OBS=0
// does at process start; NodeMetrics does not gate (it feeds sensors), so
// it is measured identically in both variants — the comparison isolates
// the *optional* instrumentation.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "rt/metrics.hpp"
#include "support/channel.hpp"
#include "support/clock.hpp"

namespace {

using namespace bsk;

obs::Counter& bench_counter() {
  static obs::Counter& c =
      obs::counter("bench_obs_tasks_total", "E14 scratch counter");
  return c;
}

obs::Histogram& bench_hist() {
  static obs::Histogram& h = obs::histogram(
      "bench_obs_batch_size", {1, 2, 4, 8, 16, 32, 64}, "E14 scratch hist");
  return h;
}

obs::Gauge& bench_gauge() {
  static obs::Gauge& g =
      obs::gauge("bench_obs_queue_depth", "E14 scratch gauge");
  return g;
}

/// The farm dataplane hot path, instrumented the way rt::Farm is: batches
/// of tasks through a bounded channel; per batch one counter add, one
/// histogram observe, one gauge store; per task a NodeMetrics departure.
/// Arg(0) = batch size, Arg(1) = obs enabled.
void BM_DataplaneBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool obs_on = state.range(1) != 0;
  const bool was_enabled = obs::enabled();
  obs::set_enabled(obs_on);

  support::Channel<int> ch(1024);
  rt::NodeMetrics metrics;
  std::jthread consumer([&] {
    std::vector<int> buf;
    buf.reserve(batch);
    while (ch.pop_n(buf, batch) == support::ChannelStatus::Ok) {
      bench_hist().observe(static_cast<double>(buf.size()));
      bench_gauge().set(static_cast<double>(ch.size()));
      for (int v : buf) {
        benchmark::DoNotOptimize(v);
        metrics.record_departure();
      }
      buf.clear();
    }
  });

  std::int64_t items = 0;
  std::vector<int> out;
  for (auto _ : state) {
    out.assign(batch, 1);
    bench_counter().inc(batch);
    bench_hist().observe(static_cast<double>(batch));
    ch.push_n(out);
    items += static_cast<std::int64_t>(batch);
  }
  ch.close();
  consumer.join();
  state.SetItemsProcessed(items);
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_DataplaneBatch)
    ->Args({64, 1})
    ->Args({64, 0})
    ->Args({8, 1})
    ->Args({8, 0});

void BM_CounterInc(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  for (auto _ : state) bench_counter().inc();
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_CounterInc)->Arg(1)->Arg(0);

void BM_HistogramObserve(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  double x = 0.0;
  for (auto _ : state) {
    bench_hist().observe(x);
    x = x < 64.0 ? x + 1.0 : 0.0;
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_HistogramObserve)->Arg(1)->Arg(0);

void BM_GaugeSet(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  double x = 0.0;
  for (auto _ : state) {
    bench_gauge().set(x);
    x += 1.0;
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_GaugeSet)->Arg(1)->Arg(0);

/// NodeMetrics sensor path (ungated — it feeds the control loop). This is
/// what replaced the old per-call mutex; its cost lands on every task the
/// farm moves regardless of BSK_OBS.
void BM_RateWindowRecord(benchmark::State& state) {
  rt::NodeMetrics metrics;
  for (auto _ : state) metrics.record_departure();
}
BENCHMARK(BM_RateWindowRecord);

void BM_RateWindowRead(benchmark::State& state) {
  rt::NodeMetrics metrics;
  for (int i = 0; i < 1000; ++i) metrics.record_departure();
  for (auto _ : state) benchmark::DoNotOptimize(metrics.departure_rate());
}
BENCHMARK(BM_RateWindowRead);

}  // namespace

BENCHMARK_MAIN();
