#pragma once
// Shared harness pieces for the experiment benches: a periodic sampler that
// records time series on the virtual clock, and table printers producing
// the rows/series the paper's figures plot.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "support/clock.hpp"
#include "support/event_log.hpp"

namespace bsk::benchutil {

/// One sampled row of a time series.
struct Sample {
  support::SimTime t = 0.0;
  std::vector<double> values;
};

/// Polls a probe function every `period` simulated seconds on a background
/// thread until stopped; collects rows.
class Sampler {
 public:
  using Probe = std::function<std::vector<double>()>;

  Sampler(support::SimDuration period, Probe probe)
      : period_(period), probe_(std::move(probe)) {}

  void start() {
    thread_ = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        samples_.push_back({support::Clock::now(), probe_()});
        std::mutex m;
        std::condition_variable_any cv;
        std::unique_lock lk(m);
        cv.wait_for(lk, st, support::Clock::to_wall(period_),
                    [] { return false; });
      }
    });
  }

  void stop() {
    thread_.request_stop();
    if (thread_.joinable()) thread_.join();
  }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  support::SimDuration period_;
  Probe probe_;
  std::vector<Sample> samples_;
  std::jthread thread_;
};

/// Print a time-series table: "t  col1  col2 ..." with a header.
inline void print_series(const std::string& title,
                         const std::vector<std::string>& columns,
                         const std::vector<Sample>& samples) {
  std::printf("\n# %s\n#%10s", title.c_str(), "t[s]");
  for (const auto& c : columns) std::printf("  %12s", c.c_str());
  std::printf("\n");
  for (const Sample& s : samples) {
    std::printf("%11.1f", s.t);
    for (double v : s.values) std::printf("  %12.3f", v);
    std::printf("\n");
  }
}

/// Print the event line of one manager (the paper's per-manager event
/// graphs): "t  event  value  detail".
inline void print_events(const std::string& title,
                         const support::EventLog& log,
                         const std::string& source) {
  std::printf("\n# %s\n", title.c_str());
  for (const auto& e : log.by_source(source)) {
    std::printf("%11.1f  %-16s %8.3f", e.time, e.name.c_str(), e.value);
    if (!e.detail.empty()) std::printf("  (%s)", e.detail.c_str());
    std::printf("\n");
  }
}

}  // namespace bsk::benchutil
