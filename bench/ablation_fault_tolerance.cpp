// Experiment E9 (extension) — the fault-tolerance concern.
//
// The paper lists fault tolerance among the target non-functional concerns
// but evaluates only performance and security. This ablation crashes two
// of a farm's workers mid-run and compares three manager policies:
//
//   ft-rules   – fault_tolerance_rules(): crashes are observed as
//                WorkerFailureBean and replaced one-for-one on the next
//                control cycle (fast recovery);
//   perf-only  – Fig. 5 rules alone: the crash surfaces only as a
//                throughput-contract violation after the rate window turns
//                over (slow recovery);
//   none       – best-effort contract, no applicable rule: the farm limps
//                on the survivors (no recovery).
//
// All modes must deliver every task exactly once (runtime-level recovery).

#include <cstdio>

#include "am/builtin_rules.hpp"
#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/behavioural_skeleton.hpp"

using namespace bsk;

namespace {

struct Result {
  double restore_s = -1.0;   ///< failure → worker capacity restored
  double min_rate = 1e9;     ///< worst observed throughput after the crash
  std::size_t final_workers = 0;
  std::size_t processed = 0;
  std::size_t add_events = 0;
};

enum class Mode { FtRules, PerfOnly, None };

Result run(Mode mode) {
  sim::Platform platform;
  platform.add_machine("smp16", "local", 16);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  rt::FarmConfig fc;
  fc.initial_workers = 4;
  fc.rate_window = support::SimDuration(10.0);
  am::ManagerConfig mc;
  mc.period = support::SimDuration(2.0);
  mc.max_workers = 8;
  mc.warmup_s = 12.0;  // past the rate window: no spurious warmup growth
  mc.action_cooldown_s = 4.0;

  auto farm_bs = bs::make_farm_bs(
      "farm", fc, [] { return std::make_unique<rt::SimComputeNode>(); }, mc,
      &rm, {}, rt::Placement{&platform, 0}, &log);
  if (mode == Mode::FtRules)
    farm_bs->manager().load_rules(am::fault_tolerance_rules());

  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->start_managers();
  const am::Contract contract = mode == Mode::None
                                    ? am::Contract::bestEffort()
                                    : am::Contract::min_throughput(1.0);
  farm_bs->manager().set_contract(contract);

  // Demand 1.33 tasks/s of 3s work: 4 workers hold 1.33; after 2 crashes
  // the survivors can only deliver ~0.67 < the 1.0 SLA.
  std::jthread feeder([&farm] {
    for (int i = 0; i < 160; ++i) {
      if (!farm.input()->push(rt::Task::data(i, 3.0))) return;
      support::Clock::sleep_for(support::SimDuration(0.75));
    }
    farm.input()->close();
  });
  std::jthread drainer([&farm] {
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) {
    }
  });

  Result r;
  support::Clock::sleep_for(support::SimDuration(40.0));
  const std::size_t before = farm.worker_count();
  const double fail_t = support::Clock::now();
  farm.inject_worker_failure();
  farm.inject_worker_failure();

  // Time until the worker capacity is restored to its pre-crash level,
  // tracking the throughput sag along the way.
  while (support::Clock::now() - fail_t < 60.0) {
    r.min_rate = std::min(r.min_rate, farm.metrics().departure_rate());
    if (farm.worker_count() >= before) {
      r.restore_s = support::Clock::now() - fail_t;
      break;
    }
    support::Clock::sleep_for(support::SimDuration(0.5));
  }
  r.final_workers = farm.worker_count();

  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->stop_managers();
  r.processed = farm.metrics().total_departures();
  r.add_events = log.count("AM_farm", "addWorker");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::arg_double(argc, argv, "--scale", 60.0);
  support::ScopedClockScale clock(scale);

  std::printf("== E9 (extension): worker-crash recovery — FT rules vs"
              " perf-only vs none ==\n");
  std::printf("2 of 4 workers crashed at t~45s; SLA 1.0 task/s; demand"
              " 1.33/s of 3s tasks\n\n");
  std::printf("%-10s %12s %10s %10s %10s %10s\n", "# mode", "restore[s]",
              "min_rate", "workers", "addEvents", "processed");

  const struct {
    Mode mode;
    const char* name;
  } modes[] = {{Mode::FtRules, "ft-rules"},
               {Mode::PerfOnly, "perf-only"},
               {Mode::None, "none"}};
  for (const auto& m : modes) {
    const Result r = run(m.mode);
    std::printf("%-10s %12.1f %10.2f %10zu %10zu %10zu\n", m.name,
                r.restore_s, r.min_rate, r.final_workers, r.add_events,
                r.processed);
  }
  std::printf("\n# expected shape: ft-rules restores capacity within one"
              " control period (~2s); perf-only only after the throughput"
              " window reveals the contract violation (>=10s, deeper rate"
              " sag); none never (-1). processed = 160 in every mode"
              " (exactly-once runtime recovery).\n");
  return 0;
}
