// Experiment E7b (extension) — real-process cluster self-assembly.
//
// N bskd daemons on loopback (one seed, N-1 joiners with descending
// --cores) self-assemble into one membership view; the weighted election
// ranks them; a farm recruits its workers from the live view through
// cluster::MembershipClient (argv names no worker); one daemon then leaves
// gracefully and the fleet deregisters it without a single suspicion
// eviction. Reported:
//
//   assemble[ms]  — cold start to one converged view on every daemon;
//   recruit       — remote workers recruited from the view (must equal the
//                   farm size; fallback must be 0: the fleet was live);
//   uniq/tasks    — exactly-once accounting at the farm output;
//   leave[ms]     — SIGTERM of the lightest member to every survivor
//                   agreeing on the shrunken view;
//   evictions     — summed over survivors (must be 0: the departure was
//                   announced, not detected).
//
// --smoke runs the CI shape (4 daemons, 80 tasks) and exits nonzero on any
// violated invariant, which is what scripts/run_experiments.sh and the CI
// cluster-smoke job gate on.
//
// The bskd binary path is injected by CMake as BSK_BSKD_PATH.

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "cluster/client.hpp"
#include "net/worker_pool.hpp"
#include "rt/farm.hpp"
#include "support/clock.hpp"

#ifndef BSK_BSKD_PATH
#define BSK_BSKD_PATH "bskd"
#endif

using namespace bsk;

namespace {

std::string key_of(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

/// Every daemon reports the same n-member view at the same epoch. Returns
/// elapsed wall ms, or a negative value on timeout.
double wait_converged(const std::vector<std::uint16_t>& ports, std::size_t n,
                      double deadline_wall_s) {
  const double t0 = net::wall_now();
  const double deadline = t0 + deadline_wall_s;
  while (net::wall_now() < deadline) {
    std::vector<net::MembershipView> views;
    for (const std::uint16_t p : ports) {
      auto v = cluster::fetch_membership({"127.0.0.1", p}, 1.0);
      if (!v || v->members.size() != n) break;
      views.push_back(std::move(*v));
    }
    if (views.size() == ports.size()) {
      bool same = true;
      for (const net::MembershipView& v : views)
        if (v.epoch != views[0].epoch) same = false;
      if (same) return (net::wall_now() - t0) * 1e3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return -1.0;
}

std::size_t evictions_of(std::uint16_t port) {
  const auto text = net::pull_bskd_stats({"127.0.0.1", port},
                                         net::StatsRequest::What::Prometheus);
  if (!text) return 0;
  const auto pos = text->find("bsk_cluster_evictions_total ");
  if (pos == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::atol(text->c_str() + pos + sizeof("bsk_cluster_evictions_total")));
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = benchutil::arg_flag(argc, argv, "--smoke");
  const long nodes =
      benchutil::arg_long(argc, argv, "--nodes", smoke ? 4 : 6);
  const long ntasks =
      benchutil::arg_long(argc, argv, "--tasks", smoke ? 80 : 240);
  const long nworkers = std::min<long>(4, nodes);
  bool ok = true;

  std::printf("== E7b (extension): real-process cluster self-assembly ==\n");
  std::printf("%ld bskd on loopback, farm of %ld recruited from the live "
              "view, %ld tasks%s\n\n",
              nodes, nworkers, ntasks, smoke ? " [smoke]" : "");

  // -------------------------------------------------------------- assemble
  std::vector<net::BskdProcess> fleet;
  fleet.push_back(net::spawn_bskd(
      BSK_BSKD_PATH, 5.0,
      {"--cluster", "--cores", std::to_string(1 << (nodes - 1))}));
  if (!fleet.back().valid()) {
    std::fprintf(stderr, "FATAL: could not spawn seed %s\n", BSK_BSKD_PATH);
    return 1;
  }
  for (long i = 1; i < nodes; ++i) {
    fleet.push_back(net::spawn_bskd(
        BSK_BSKD_PATH, 5.0,
        {"--join", key_of(fleet[0].port), "--cores",
         std::to_string(1 << (nodes - 1 - i))}));
    if (!fleet.back().valid()) {
      std::fprintf(stderr, "FATAL: could not spawn joiner %ld\n", i);
      return 1;
    }
  }
  std::vector<std::uint16_t> ports;
  for (const net::BskdProcess& p : fleet) ports.push_back(p.port);

  const double assemble_ms =
      wait_converged(ports, static_cast<std::size_t>(nodes), 30.0);
  if (assemble_ms < 0) {
    std::fprintf(stderr, "FATAL: fleet never converged\n");
    ok = false;
  }

  // The weighted election seen from outside: heaviest (the seed) is root.
  cluster::MembershipClient mc({{"127.0.0.1", fleet[0].port}});
  std::string root = "?";
  if (ok) {
    (void)mc.endpoints();  // prime the client's view from the fleet
    const cluster::HierarchyView h = cluster::elect(mc.last_view(), 2);
    root = h.root_key();
    if (root != key_of(fleet[0].port)) {
      std::fprintf(stderr, "FATAL: root %s is not the heaviest member\n",
                   root.c_str());
      ok = false;
    }
  }

  // --------------------------------------------------------------- recruit
  support::ScopedClockScale fast(100.0);
  net::WorkerPoolOptions po;
  po.node_kind = "echo";
  po.heartbeat_wall_s = 0.05;
  po.node.liveness_timeout_wall_s = 0.5;
  po.node.result_poll_wall_s = 0.05;
  po.tcp.connect_retries = 3;
  po.endpoint_source = mc.source();
  net::WorkerPool pool({}, po);

  std::size_t uniq = 0;
  {
    rt::FarmConfig fc;
    fc.initial_workers = static_cast<std::size_t>(nworkers);
    rt::Farm farm("clusterfarm", fc, pool.factory());
    farm.start();
    std::jthread feeder([&] {
      for (long i = 0; i < ntasks; ++i)
        farm.input()->push(rt::Task::data(static_cast<std::uint64_t>(i), 0.0,
                                          std::int64_t{i}));
      farm.input()->close();
    });
    std::set<std::uint64_t> ids;
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok)
      ids.insert(t.id);
    farm.wait();
    uniq = ids.size();
  }
  if (pool.remote_nodes_created() != static_cast<std::size_t>(nworkers) ||
      pool.fallback_nodes_created() != 0) {
    std::fprintf(stderr,
                 "FATAL: recruited %zu remote + %zu fallback, wanted %ld + 0\n",
                 pool.remote_nodes_created(), pool.fallback_nodes_created(),
                 nworkers);
    ok = false;
  }
  if (uniq != static_cast<std::size_t>(ntasks)) {
    std::fprintf(stderr, "FATAL: %zu unique results, wanted %ld\n", uniq,
                 ntasks);
    ok = false;
  }

  // ----------------------------------------------------------------- leave
  net::stop_bskd(fleet.back(), SIGTERM);  // lightest member, announced
  ports.pop_back();
  const double leave_ms =
      wait_converged(ports, static_cast<std::size_t>(nodes - 1), 15.0);
  if (leave_ms < 0) {
    std::fprintf(stderr, "FATAL: survivors never deregistered the leaver\n");
    ok = false;
  }
  std::size_t evictions = 0;
  for (const std::uint16_t p : ports) evictions += evictions_of(p);
  if (evictions != 0) {
    std::fprintf(stderr,
                 "FATAL: %zu suspicion evictions for an announced leave\n",
                 evictions);
    ok = false;
  }

  for (net::BskdProcess& p : fleet) net::stop_bskd(p, SIGKILL);

  std::printf("# nodes  assemble[ms]  root_is_seed  recruit  fallback  "
              "uniq/tasks  leave[ms]  evictions    ok\n");
  std::printf("%7ld  %12.0f  %12s  %7zu  %8zu  %5zu/%-5ld  %9.0f  %9zu  %4s\n",
              nodes, assemble_ms, root == key_of(fleet[0].port) ? "yes" : "NO",
              pool.remote_nodes_created(), pool.fallback_nodes_created(), uniq,
              ntasks, leave_ms, evictions, ok ? "yes" : "NO");
  std::printf("\n# expected shape: assemble and leave both well under their "
              "deadlines; recruit == farm size with fallback 0 (every worker "
              "came from the live view); uniq == tasks (exactly-once); "
              "evictions 0 (Leave was honored, suspicion never fired).\n");
  return ok ? 0 : 1;
}
