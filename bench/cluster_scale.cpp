// Experiment E7b (extension) — real-process cluster self-assembly.
//
// N bskd daemons on loopback (one seed, N-1 joiners with descending
// --cores) self-assemble into one membership view; the weighted election
// ranks them; a farm recruits its workers from the live view through
// cluster::MembershipClient (argv names no worker); one daemon then leaves
// gracefully and the fleet deregisters it without a single suspicion
// eviction. Reported:
//
//   assemble[ms]  — cold start to one converged view on every daemon;
//   recruit       — remote workers recruited from the view (must equal the
//                   farm size; fallback must be 0: the fleet was live);
//   uniq/tasks    — exactly-once accounting at the farm output;
//   leave[ms]     — SIGTERM of the lightest member to every survivor
//                   agreeing on the shrunken view;
//   evictions     — summed over survivors (must be 0: the departure was
//                   announced, not detected).
//
// --smoke runs the CI shape (4 daemons, 80 tasks) and exits nonzero on any
// violated invariant, which is what scripts/run_experiments.sh and the CI
// cluster-smoke job gate on.
//
// --n "8,32,128" switches to the E7c scale sweep: at each N it boots a real
// fleet, measures assembly time, late-joiner recruitment latency, and
// steady-state gossip bytes per node per second (delta gossip on; --full-at
// N0 adds one full-table fleet for the before/after), runs the E7 DES
// flat-vs-k-ary prediction at the same N in-process, and writes everything
// to --json (default BENCH_cluster_scale.json). Exit is nonzero if any
// fleet misses its convergence bound or bytes/node fails to stay sublinear
// in N. scripts/fleet.sh is the thin launcher.
//
// The bskd binary path is injected by CMake as BSK_BSKD_PATH.

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "cluster/client.hpp"
#include "des/hierarchy.hpp"
#include "net/worker_pool.hpp"
#include "rt/farm.hpp"
#include "support/clock.hpp"

#ifndef BSK_BSKD_PATH
#define BSK_BSKD_PATH "bskd"
#endif

using namespace bsk;

namespace {

std::string key_of(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

/// Every daemon reports the same n-member view at the same epoch. Returns
/// elapsed wall ms, or a negative value on timeout.
double wait_converged(const std::vector<std::uint16_t>& ports, std::size_t n,
                      double deadline_wall_s) {
  const double t0 = net::wall_now();
  const double deadline = t0 + deadline_wall_s;
  while (net::wall_now() < deadline) {
    std::vector<net::MembershipView> views;
    for (const std::uint16_t p : ports) {
      auto v = cluster::fetch_membership({"127.0.0.1", p}, 1.0);
      if (!v || v->members.size() != n) break;
      views.push_back(std::move(*v));
    }
    if (views.size() == ports.size()) {
      bool same = true;
      for (const net::MembershipView& v : views)
        if (v.epoch != views[0].epoch) same = false;
      if (same) return (net::wall_now() - t0) * 1e3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return -1.0;
}

std::size_t evictions_of(std::uint16_t port) {
  const auto text = net::pull_bskd_stats({"127.0.0.1", port},
                                         net::StatsRequest::What::Prometheus);
  if (!text) return 0;
  const auto pos = text->find("bsk_cluster_evictions_total ");
  if (pos == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::atol(text->c_str() + pos + sizeof("bsk_cluster_evictions_total")));
}

// ------------------------------------------------------ E7c scale sweep

/// First value of a prometheus line "`name` <value>".
double prom_value(const std::string& text, const char* name) {
  const std::string needle = std::string(name) + " ";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n')
      return std::atof(text.c_str() + pos + needle.size());
    pos += needle.size();
  }
  return 0.0;
}

struct GossipSample {
  double tx_bytes = 0, rx_bytes = 0, full = 0, delta = 0;
};

GossipSample sample_fleet(const std::vector<std::uint16_t>& ports) {
  GossipSample s;
  for (const std::uint16_t p : ports) {
    const auto text = net::pull_bskd_stats(
        {"127.0.0.1", p}, net::StatsRequest::What::Prometheus, 2.0);
    if (!text) continue;
    s.tx_bytes += prom_value(*text, "bsk_cluster_gossip_tx_bytes_total");
    s.rx_bytes += prom_value(*text, "bsk_cluster_gossip_rx_bytes_total");
    s.full += prom_value(*text, "bsk_cluster_gossip_full_total");
    s.delta += prom_value(*text, "bsk_cluster_gossip_delta_total");
  }
  return s;
}

/// wait_converged with a polling cadence that scales with fleet size —
/// hammering 128 daemons every 25 ms would burn the bench's ephemeral
/// ports on TIME_WAIT before the fleet converges. Stage 1 watches only the
/// seed until it has seen everyone; stage 2 checks the whole fleet.
double wait_converged_at_scale(const std::vector<std::uint16_t>& ports,
                               std::size_t n, double deadline_wall_s) {
  const double t0 = net::wall_now();
  const double deadline = t0 + deadline_wall_s;
  const auto poll = std::chrono::milliseconds(
      50 + 5 * static_cast<long>(ports.size()));
  while (net::wall_now() < deadline) {
    const auto v = cluster::fetch_membership({"127.0.0.1", ports[0]}, 2.0);
    if (v && v->members.size() == n) break;
    std::this_thread::sleep_for(poll);
  }
  while (net::wall_now() < deadline) {
    std::vector<net::MembershipView> views;
    for (const std::uint16_t p : ports) {
      auto v = cluster::fetch_membership({"127.0.0.1", p}, 2.0);
      if (!v || v->members.size() != n) break;
      views.push_back(std::move(*v));
    }
    if (views.size() == ports.size()) {
      bool same = true;
      for (const net::MembershipView& v : views)
        if (v.epoch != views[0].epoch) same = false;
      if (same) return (net::wall_now() - t0) * 1e3;
    }
    std::this_thread::sleep_for(poll);
  }
  return -1.0;
}

struct ScaleRun {
  long n = 0;
  double gossip_period_s = 0;
  bool delta_gossip = true;
  double assemble_ms = -1;
  double recruit_ms = -1;
  double tx_bytes_per_node_s = 0;
  double rx_bytes_per_node_s = 0;
  double full_fraction = 0;  ///< full / (full + delta) inside the window
  bool ok = false;
};

/// Boot one fleet of `n` real bskd, measure, tear down.
ScaleRun run_fleet(long n, double period_s, bool delta, double window_s) {
  ScaleRun r;
  r.n = n;
  r.gossip_period_s = period_s;
  r.delta_gossip = delta;

  std::vector<std::string> common = {"--gossip-period",
                                     std::to_string(period_s)};
  if (!delta) common.push_back("--gossip-full");

  std::vector<net::BskdProcess> fleet;
  const auto cleanup = [&] {
    for (net::BskdProcess& p : fleet) net::stop_bskd(p, SIGKILL);
  };

  std::vector<std::string> seed_args = {"--cluster", "--cores", "64"};
  seed_args.insert(seed_args.end(), common.begin(), common.end());
  fleet.push_back(net::spawn_bskd(BSK_BSKD_PATH, 10.0, seed_args));
  if (!fleet.back().valid()) {
    std::fprintf(stderr, "FATAL: could not spawn seed at n=%ld\n", n);
    cleanup();
    return r;
  }

  // The boot storm proper: every joiner pointed at the one seed, spawned
  // back to back. assemble_ms counts from here — spawn cost is part of
  // what a launcher experiences.
  const double t_boot = net::wall_now();
  for (long i = 1; i < n; ++i) {
    std::vector<std::string> args = {"--join", key_of(fleet[0].port),
                                     "--cores",
                                     std::to_string(1 + (i % 4))};
    args.insert(args.end(), common.begin(), common.end());
    fleet.push_back(net::spawn_bskd(BSK_BSKD_PATH, 10.0, args));
    if (!fleet.back().valid()) {
      std::fprintf(stderr, "FATAL: could not spawn joiner %ld at n=%ld\n", i,
                   n);
      cleanup();
      return r;
    }
  }
  std::vector<std::uint16_t> ports;
  for (const net::BskdProcess& p : fleet) ports.push_back(p.port);

  const double assemble_deadline = 30.0 + 0.75 * static_cast<double>(n);
  if (wait_converged_at_scale(ports, static_cast<std::size_t>(n),
                              assemble_deadline) < 0) {
    std::fprintf(stderr, "FATAL: fleet n=%ld never converged (%.0fs)\n", n,
                 assemble_deadline);
    cleanup();
    return r;
  }
  r.assemble_ms = (net::wall_now() - t_boot) * 1e3;

  // Steady state: no membership changes, only anti-entropy ticks. The
  // bytes this window moves are what delta gossip exists to shrink.
  const GossipSample s0 = sample_fleet(ports);
  const double w0 = net::wall_now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(window_s * 1e3)));
  const GossipSample s1 = sample_fleet(ports);
  const double w = net::wall_now() - w0;
  r.tx_bytes_per_node_s =
      (s1.tx_bytes - s0.tx_bytes) / static_cast<double>(n) / w;
  r.rx_bytes_per_node_s =
      (s1.rx_bytes - s0.rx_bytes) / static_cast<double>(n) / w;
  const double payloads = (s1.full - s0.full) + (s1.delta - s0.delta);
  r.full_fraction = payloads > 0 ? (s1.full - s0.full) / payloads : 0.0;

  // Recruitment: one late joiner, timed until every daemon has it.
  const double t_rec = net::wall_now();
  std::vector<std::string> rec_args = {"--join", key_of(fleet[0].port),
                                       "--cores", "2"};
  rec_args.insert(rec_args.end(), common.begin(), common.end());
  fleet.push_back(net::spawn_bskd(BSK_BSKD_PATH, 10.0, rec_args));
  if (fleet.back().valid()) {
    ports.push_back(fleet.back().port);
    const double rec_deadline = 15.0 + 0.25 * static_cast<double>(n);
    if (wait_converged_at_scale(ports, static_cast<std::size_t>(n) + 1,
                                rec_deadline) >= 0)
      r.recruit_ms = (net::wall_now() - t_rec) * 1e3;
  }
  if (r.recruit_ms < 0)
    std::fprintf(stderr, "FATAL: recruit at n=%ld never became visible\n", n);

  cleanup();
  r.ok = r.assemble_ms >= 0 && r.recruit_ms >= 0;
  return r;
}

struct DesPred {
  long n = 0;
  std::size_t kary_groups = 0;
  double flat_converge_s = -1;
  double kary_converge_s = -1;
};

/// The E7 DES model at matching scale: one flat manager vs a k-ary split,
/// same offered load and SLA shape as bench/des_scale.
DesPred des_predict(long n) {
  DesPred p;
  p.n = n;
  p.kary_groups = static_cast<std::size_t>(n) / 8 < 2
                      ? 2
                      : static_cast<std::size_t>(n) / 8;
  for (const bool flat : {true, false}) {
    bsk::des::HierConfig c;
    c.groups = flat ? 1 : p.kary_groups;
    c.max_workers = static_cast<std::size_t>(n);
    c.service_s = 1.0;
    c.arrival_rate = 0.75 * static_cast<double>(n);
    c.contract_lo = 0.70 * static_cast<double>(n);
    c.tasks = static_cast<std::uint64_t>(
        c.arrival_rate * (60.0 + 6.0 * static_cast<double>(n)));
    const bsk::des::HierResult r = bsk::des::run_hierarchy(c);
    (flat ? p.flat_converge_s : p.kary_converge_s) = r.converged_at;
  }
  return p;
}

int run_sweep(int argc, char** argv) {
  const std::string n_list =
      benchutil::arg_string(argc, argv, "--n", "8,32,128");
  const std::string json_path = benchutil::arg_string(
      argc, argv, "--json", "BENCH_cluster_scale.json");
  const double window_s =
      benchutil::arg_double(argc, argv, "--window", 5.0);
  const long full_at = benchutil::arg_long(argc, argv, "--full-at", 0);
  const double forced_period =
      benchutil::arg_double(argc, argv, "--gossip-period", 0.0);

  std::vector<long> scales;
  for (std::size_t at = 0; at < n_list.size();) {
    const long v = std::atol(n_list.c_str() + at);
    if (v > 1) scales.push_back(v);
    const std::size_t comma = n_list.find(',', at);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  if (scales.empty()) {
    std::fprintf(stderr, "FATAL: --n parsed to an empty scale list\n");
    return 1;
  }

  // Longer periods at scale: the point is sublinear *per-tick* cost, not
  // saturating one loopback with 128 daemons ticking at test cadence.
  const auto period_for = [&](long n) {
    if (forced_period > 0) return forced_period;
    return n <= 16 ? 0.1 : n <= 64 ? 0.15 : 0.25;
  };

  std::printf("== E7c: real-fleet scale sweep vs DES prediction ==\n");
  std::printf("%5s %6s %10s %13s %13s %16s %10s\n", "n", "mode",
              "period[s]", "assemble[ms]", "recruit[ms]", "tx B/node/s",
              "full%");

  std::vector<ScaleRun> runs;
  std::vector<DesPred> preds;
  bool ok = true;
  for (const long n : scales) {
    ScaleRun r = run_fleet(n, period_for(n), /*delta=*/true, window_s);
    std::printf("%5ld %6s %10.2f %13.0f %13.0f %16.1f %9.1f%%\n", n, "delta",
                r.gossip_period_s, r.assemble_ms, r.recruit_ms,
                r.tx_bytes_per_node_s, 100.0 * r.full_fraction);
    ok = ok && r.ok;
    runs.push_back(r);
    if (n == full_at) {
      ScaleRun f = run_fleet(n, period_for(n), /*delta=*/false, window_s);
      std::printf("%5ld %6s %10.2f %13.0f %13.0f %16.1f %9.1f%%\n", n, "full",
                  f.gossip_period_s, f.assemble_ms, f.recruit_ms,
                  f.tx_bytes_per_node_s, 100.0 * f.full_fraction);
      ok = ok && f.ok;
      runs.push_back(f);
    }
    preds.push_back(des_predict(n));
  }

  // Sublinear gossip bytes/node: between the smallest and largest delta
  // fleet, bytes/node/s must grow strictly slower than N. (Period scaling
  // is normalized out: compare bytes per node per *tick*.)
  const ScaleRun* lo = nullptr;
  const ScaleRun* hi = nullptr;
  for (const ScaleRun& r : runs) {
    if (!r.delta_gossip || !r.ok) continue;
    if (lo == nullptr || r.n < lo->n) lo = &r;
    if (hi == nullptr || r.n > hi->n) hi = &r;
  }
  double bytes_factor = 0, n_factor = 0;
  bool sublinear = false;
  if (lo != nullptr && hi != nullptr && hi != lo) {
    const double lo_tick = lo->tx_bytes_per_node_s * lo->gossip_period_s;
    const double hi_tick = hi->tx_bytes_per_node_s * hi->gossip_period_s;
    bytes_factor = lo_tick > 0 ? hi_tick / lo_tick : 0;
    n_factor = static_cast<double>(hi->n) / static_cast<double>(lo->n);
    sublinear = bytes_factor > 0 && bytes_factor < n_factor;
    if (!sublinear) {
      std::fprintf(stderr,
                   "FATAL: bytes/node grew %.2fx over a %.0fx fleet — delta "
                   "gossip is not paying for itself\n",
                   bytes_factor, n_factor);
      ok = false;
    }
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"experiment\": \"E7c\",\n");
  std::fprintf(out,
               "  \"context\": {\"nproc\": %u, \"generated_unix\": %lld, "
               "\"window_s\": %.1f},\n",
               std::thread::hardware_concurrency(),
               static_cast<long long>(std::time(nullptr)), window_s);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    std::fprintf(
        out,
        "    {\"n\": %ld, \"gossip_period_s\": %.3f, \"delta_gossip\": %s, "
        "\"assemble_ms\": %.0f, \"recruit_ms\": %.0f, "
        "\"gossip_tx_bytes_per_node_s\": %.1f, "
        "\"gossip_rx_bytes_per_node_s\": %.1f, \"full_fraction\": %.4f, "
        "\"ok\": %s}%s\n",
        r.n, r.gossip_period_s, r.delta_gossip ? "true" : "false",
        r.assemble_ms, r.recruit_ms, r.tx_bytes_per_node_s,
        r.rx_bytes_per_node_s, r.full_fraction, r.ok ? "true" : "false",
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"des_prediction\": [\n");
  for (std::size_t i = 0; i < preds.size(); ++i) {
    const DesPred& p = preds[i];
    std::fprintf(out,
                 "    {\"n\": %ld, \"flat_converge_s\": %.1f, "
                 "\"kary_groups\": %zu, \"kary_converge_s\": %.1f}%s\n",
                 p.n, p.flat_converge_s, p.kary_groups, p.kary_converge_s,
                 i + 1 < preds.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"summary\": {\"bytes_per_node_sublinear\": %s, "
               "\"bytes_factor\": %.2f, \"n_factor\": %.2f, \"ok\": %s}\n}\n",
               sublinear ? "true" : "false", bytes_factor, n_factor,
               ok ? "true" : "false");
  std::fclose(out);

  std::printf("\n# DES prediction (flat vs k-ary converge[s]):\n");
  for (const DesPred& p : preds)
    std::printf("#   n=%-4ld flat=%-8.1f k-ary(g=%zu)=%.1f\n", p.n,
                p.flat_converge_s, p.kary_groups, p.kary_converge_s);
  std::printf("# wrote %s (sublinear=%s, bytes x%.2f over fleet x%.0f)\n",
              json_path.c_str(), sublinear ? "yes" : "NO", bytes_factor,
              n_factor);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (benchutil::arg_raw(argc, argv, "--n") != nullptr ||
      benchutil::arg_flag(argc, argv, "--sweep"))
    return run_sweep(argc, argv);
  const bool smoke = benchutil::arg_flag(argc, argv, "--smoke");
  const long nodes =
      benchutil::arg_long(argc, argv, "--nodes", smoke ? 4 : 6);
  const long ntasks =
      benchutil::arg_long(argc, argv, "--tasks", smoke ? 80 : 240);
  const long nworkers = std::min<long>(4, nodes);
  bool ok = true;

  std::printf("== E7b (extension): real-process cluster self-assembly ==\n");
  std::printf("%ld bskd on loopback, farm of %ld recruited from the live "
              "view, %ld tasks%s\n\n",
              nodes, nworkers, ntasks, smoke ? " [smoke]" : "");

  // -------------------------------------------------------------- assemble
  std::vector<net::BskdProcess> fleet;
  fleet.push_back(net::spawn_bskd(
      BSK_BSKD_PATH, 5.0,
      {"--cluster", "--cores", std::to_string(1 << (nodes - 1))}));
  if (!fleet.back().valid()) {
    std::fprintf(stderr, "FATAL: could not spawn seed %s\n", BSK_BSKD_PATH);
    return 1;
  }
  for (long i = 1; i < nodes; ++i) {
    fleet.push_back(net::spawn_bskd(
        BSK_BSKD_PATH, 5.0,
        {"--join", key_of(fleet[0].port), "--cores",
         std::to_string(1 << (nodes - 1 - i))}));
    if (!fleet.back().valid()) {
      std::fprintf(stderr, "FATAL: could not spawn joiner %ld\n", i);
      return 1;
    }
  }
  std::vector<std::uint16_t> ports;
  for (const net::BskdProcess& p : fleet) ports.push_back(p.port);

  const double assemble_ms =
      wait_converged(ports, static_cast<std::size_t>(nodes), 30.0);
  if (assemble_ms < 0) {
    std::fprintf(stderr, "FATAL: fleet never converged\n");
    ok = false;
  }

  // The weighted election seen from outside: heaviest (the seed) is root.
  cluster::MembershipClient mc({{"127.0.0.1", fleet[0].port}});
  std::string root = "?";
  if (ok) {
    (void)mc.endpoints();  // prime the client's view from the fleet
    const cluster::HierarchyView h = cluster::elect(mc.last_view(), 2);
    root = h.root_key();
    if (root != key_of(fleet[0].port)) {
      std::fprintf(stderr, "FATAL: root %s is not the heaviest member\n",
                   root.c_str());
      ok = false;
    }
  }

  // --------------------------------------------------------------- recruit
  support::ScopedClockScale fast(100.0);
  net::WorkerPoolOptions po;
  po.node_kind = "echo";
  po.heartbeat_wall_s = 0.05;
  po.node.liveness_timeout_wall_s = 0.5;
  po.node.result_poll_wall_s = 0.05;
  po.tcp.connect_retries = 3;
  po.endpoint_source = mc.source();
  net::WorkerPool pool({}, po);

  std::size_t uniq = 0;
  {
    rt::FarmConfig fc;
    fc.initial_workers = static_cast<std::size_t>(nworkers);
    rt::Farm farm("clusterfarm", fc, pool.factory());
    farm.start();
    std::jthread feeder([&] {
      for (long i = 0; i < ntasks; ++i)
        farm.input()->push(rt::Task::data(static_cast<std::uint64_t>(i), 0.0,
                                          std::int64_t{i}));
      farm.input()->close();
    });
    std::set<std::uint64_t> ids;
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok)
      ids.insert(t.id);
    farm.wait();
    uniq = ids.size();
  }
  if (pool.remote_nodes_created() != static_cast<std::size_t>(nworkers) ||
      pool.fallback_nodes_created() != 0) {
    std::fprintf(stderr,
                 "FATAL: recruited %zu remote + %zu fallback, wanted %ld + 0\n",
                 pool.remote_nodes_created(), pool.fallback_nodes_created(),
                 nworkers);
    ok = false;
  }
  if (uniq != static_cast<std::size_t>(ntasks)) {
    std::fprintf(stderr, "FATAL: %zu unique results, wanted %ld\n", uniq,
                 ntasks);
    ok = false;
  }

  // ----------------------------------------------------------------- leave
  net::stop_bskd(fleet.back(), SIGTERM);  // lightest member, announced
  ports.pop_back();
  const double leave_ms =
      wait_converged(ports, static_cast<std::size_t>(nodes - 1), 15.0);
  if (leave_ms < 0) {
    std::fprintf(stderr, "FATAL: survivors never deregistered the leaver\n");
    ok = false;
  }
  std::size_t evictions = 0;
  for (const std::uint16_t p : ports) evictions += evictions_of(p);
  if (evictions != 0) {
    std::fprintf(stderr,
                 "FATAL: %zu suspicion evictions for an announced leave\n",
                 evictions);
    ok = false;
  }

  for (net::BskdProcess& p : fleet) net::stop_bskd(p, SIGKILL);

  std::printf("# nodes  assemble[ms]  root_is_seed  recruit  fallback  "
              "uniq/tasks  leave[ms]  evictions    ok\n");
  std::printf("%7ld  %12.0f  %12s  %7zu  %8zu  %5zu/%-5ld  %9.0f  %9zu  %4s\n",
              nodes, assemble_ms, root == key_of(fleet[0].port) ? "yes" : "NO",
              pool.remote_nodes_created(), pool.fallback_nodes_created(), uniq,
              ntasks, leave_ms, evictions, ok ? "yes" : "NO");
  std::printf("\n# expected shape: assemble and leave both well under their "
              "deadlines; recruit == farm size with fallback 0 (every worker "
              "came from the live view); uniq == tasks (exactly-once); "
              "evictions 0 (Leave was honored, suspicion never fired).\n");
  return ok ? 0 : 1;
}
