// Experiment E10 (ablation) — manager period & cooldown vs stability.
//
// The autonomic control loop reacts to rates measured over a sliding
// window; when the loop runs much faster than the window turns over, it
// keeps reacting to stale evidence and overshoots (extra workers recruited
// for nothing). The damping cooldown after each action trades reaction
// speed for stability. This DES ablation sweeps both knobs on a farm that
// must grow from 10 to ~50 workers and reports: convergence time, worker
// overshoot above what the load needs, and total reconfiguration actions.

#include <algorithm>
#include <cstdio>

#include "des/farm_model.hpp"

using namespace bsk::des;

namespace {

struct Row {
  double period, cooldown;
  double converge;
  std::size_t peak_workers;
  std::uint64_t actions;
};

Row run(double period_s, double cooldown_s) {
  Simulator sim;
  DesFarmParams fp;
  fp.service_s = 1.0;
  fp.initial_workers = 10;
  fp.max_workers = 256;
  fp.window_s = 20.0;  // long window: more stale-evidence lag
  DesFarm farm(sim, fp);

  DesManagerParams mp;
  mp.period_s = period_s;
  mp.contract_lo = 45.0;  // needs ~50 workers at 50 tasks/s offered
  mp.contract_hi = 60.0;
  mp.max_workers = 256;
  mp.add_per_step = 4;
  mp.cooldown_s = cooldown_s;
  mp.warmup_s = 10.0;
  DesFarmManager mgr(sim, farm, mp);

  DesSource src(sim, 50.0, 40000, [&farm] { farm.offer(); });
  src.start();
  mgr.start();
  sim.run_until(600.0);
  mgr.stop();

  Row r{period_s, cooldown_s, mgr.converged_at(), 0, mgr.adds() + mgr.removes()};
  for (const auto& [t, w] : farm.worker_history())
    r.peak_workers = std::max(r.peak_workers, w);
  return r;
}

}  // namespace

int main() {
  std::printf("== E10: control period / cooldown vs stability (DES) ==\n");
  std::printf("offered 50 tasks/s of 1s work; SLA [45,60]; ~50 workers"
              " needed, rate window 20s\n\n");
  std::printf("%10s %12s %12s %14s %10s %12s\n", "# period[s]", "cooldown[s]",
              "converge[s]", "peak_workers", "overshoot", "actions");

  const double periods[] = {1.0, 2.0, 5.0, 10.0};
  const double cooldowns[] = {0.0, 5.0, 15.0};
  for (double p : periods) {
    for (double c : cooldowns) {
      const Row r = run(p, c);
      std::printf("%10.0f %12.0f %12.1f %14zu %10zu %12llu\n", r.period,
                  r.cooldown, r.converge, r.peak_workers,
                  r.peak_workers > 50 ? r.peak_workers - 50 : 0,
                  static_cast<unsigned long long>(r.actions));
    }
  }

  std::printf("\n# expected shape: short periods with no cooldown converge"
              " fastest but overshoot hardest (stale-window reactions);"
              " cooldown >= window tames the overshoot at the cost of"
              " slower convergence.\n");
  return 0;
}
