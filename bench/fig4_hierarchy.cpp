// Experiment E2 — the paper's Fig. 4.
//
// Hierarchical autonomic management of a three-stage pipeline
// pipe(Producer, Farm(Filter), Consumer) under a 0.3–0.7 tasks/s
// throughput-range SLA, with four managers: AM_A (pipeline/application),
// AM_P (producer), AM_F (farm), AM_C (consumer).
//
// Prints the paper's four sub-graphs:
//   1. events and actions in AM_A   (incRate / decRate / endStream)
//   2. events and actions in AM_F   (contrLow / notEnough / raiseViol /
//                                    addWorker / rebalance)
//   3. input rate and farm throughput vs the contract stripe
//   4. cores used over time
//
// Expected shape (paper): AM_F first raises notEnoughTasks violations
// (input pressure too low) instead of acting; AM_A reacts with repeated
// incRate contracts to AM_P; once pressure suffices AM_F adds workers
// (twice, two at a time), possibly asking the producer to back off
// (decRate) when pressure overshoots; at endStream AM_A stops reacting and
// AM_F only rebalances queues.

#include <cstdio>

#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/apps.hpp"

int main(int argc, char** argv) {
  using namespace bsk;
  const double scale = benchutil::arg_double(argc, argv, "--scale", 50.0);
  support::ScopedClockScale clock(scale);

  sim::Platform platform;
  platform.add_machine("smp16", "local", 16, 1.0);
  sim::ResourceManager rm(platform);
  support::EventLog log;

  bs::Fig4Params p;
  p.tasks = static_cast<std::size_t>(
      benchutil::arg_long(argc, argv, "--tasks", 80));
  bs::Fig4App app(p, rm, log);

  benchutil::Sampler sampler(
      support::SimDuration(2.0), [&] {
        return std::vector<double>{
            app.producer_source().rate(),
            app.farm().metrics().arrival_rate(),
            app.farm().metrics().departure_rate(),
            p.contract_lo,
            p.contract_hi,
            static_cast<double>(app.farm().worker_count()),
            static_cast<double>(app.cores_in_use()),
        };
      });

  std::printf("== Fig. 4: hierarchical AMs, contract %.1f-%.1f tasks/s ==\n",
              p.contract_lo, p.contract_hi);
  std::printf("tasks=%zu  producer_rate0=%.2f/s  filter_work=%.1fs  "
              "initial_workers=%zu\n",
              p.tasks, p.initial_rate, p.work_s, p.initial_workers);

  app.start();
  sampler.start();
  app.wait();
  sampler.stop();

  benchutil::print_events("graph 1: AM_A (application manager) events", log,
                          "AM_app");
  benchutil::print_events("graph 2: AM_F (farm manager) events", log,
                          "AM_farm");
  benchutil::print_series(
      "graph 3: producer rate / farm input / farm throughput vs contract",
      {"prod_rate", "input_rate", "throughput", "c_lo", "c_hi", "workers",
       "cores"},
      sampler.samples());

  std::printf("\n# summary: incRate=%zu decRate=%zu addWorker=%zu "
              "raiseViol=%zu rebalance=%zu endStream=%zu processed=%zu\n",
              log.count("AM_app", "incRate"), log.count("AM_app", "decRate"),
              log.count("AM_farm", "addWorker"),
              log.count("AM_farm", "raiseViol"),
              log.count("AM_farm", "rebalance"),
              log.count("AM_app", "endStream"), app.sink().received());
  return 0;
}
