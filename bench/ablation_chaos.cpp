// Experiment E9b (extension) — chaos sweep: fault classes vs self-healing.
//
// A 4-worker remote farm (real bskd process, TCP loopback) runs the same
// task stream under one fault class at a time, injected deterministically
// by a seeded FaultPlan. Reported per class:
//
//   delivered/uniq — exactly-once accounting at the output (uniq counts
//                    distinct task ids; delivered counts arrivals, so any
//                    injected duplicate that leaked shows as delivered>uniq);
//   dup_inj        — duplicates the injector created on the wire (all of
//                    them must be suppressed by the sequence protocol);
//   drop/corrupt   — frames lost / damaged (recovered by retransmission
//                    and the typed-decode path);
//   mttr[ms]       — the longest silence in the result stream after the
//                    fault onset: how long the farm's output stalled before
//                    resume / retransmit / replacement restored flow;
//   hard/fallback  — endpoint hard-failures and local replacement nodes
//                    (nonzero only for the classes that kill sessions).
//
// The same seed reproduces the same fault schedule byte-for-byte, so a
// regression in any self-healing path shows up as a stable diff of this
// table, not a flaky one.
//
// The bskd binary path is injected by CMake as BSK_BSKD_PATH.

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "bs/remote_bs.hpp"
#include "net/chaos.hpp"
#include "net/worker_pool.hpp"
#include "support/clock.hpp"

#ifndef BSK_BSKD_PATH
#define BSK_BSKD_PATH "bskd"
#endif

using namespace bsk;

namespace {

struct CaseSpec {
  const char* name;
  std::optional<net::ChaosSpec> chaos;
  double grace_wall_s = 1.5;
};

struct Result {
  std::size_t arrivals = 0;
  std::size_t unique = 0;
  net::ChaosStats stats;
  std::size_t hard_fails = 0;
  std::size_t fallbacks = 0;
  std::size_t farm_failures = 0;
  double mttr_ms = 0.0;  ///< longest output silence after fault onset
  bool spawned = false;
};

Result run(const CaseSpec& cs, long ntasks, long workers,
           std::uint64_t seed) {
  Result r;
  net::BskdProcess daemon =
      net::spawn_bskd(BSK_BSKD_PATH, 5.0, {"--session-linger", "5"});
  if (!daemon.valid()) return r;
  r.spawned = true;

  net::WorkerPoolOptions o;
  o.node_kind = "sim";
  o.heartbeat_wall_s = 0.05;
  o.handshake_timeout_wall_s = 0.5;
  o.node.liveness_timeout_wall_s = 0.3;
  o.node.result_poll_wall_s = 0.05;
  o.node.retransmit_timeout_wall_s = 0.25;
  o.node.reconnect_backoff_wall_s = 0.02;
  o.node.reconnect_grace_wall_s = cs.grace_wall_s;
  o.tcp.connect_retries = 3;
  o.chaos = cs.chaos;
  o.chaos_seed = seed;
  net::WorkerPool pool({{"127.0.0.1", daemon.port}}, o);

  // Full BS: replacement after a hard failure is the manager's job
  // (workerFail -> ADD_EXECUTOR), not the runtime's.
  support::EventLog log;
  rt::FarmConfig fc;
  fc.initial_workers = static_cast<std::size_t>(workers);
  am::ManagerConfig mc;
  mc.period = support::SimDuration(1.0);
  mc.warmup_s = 0.0;
  auto farm_bs = bs::make_remote_farm_bs("chaos", fc, pool, mc, nullptr, {},
                                         {}, &log, 0.05);
  auto& farm = dynamic_cast<rt::Farm&>(farm_bs->runnable());
  farm.start();
  farm_bs->start_managers();
  farm_bs->manager().set_contract(am::Contract::bestEffort());

  // Paced feeder: the stream must still be open when the scripted faults
  // land, or the farm is already shutting down and nothing self-heals.
  std::jthread feeder([&farm, ntasks] {
    for (long i = 0; i < ntasks; ++i) {
      farm.input()->push(rt::Task::data(static_cast<std::uint64_t>(i), 1.0,
                                        std::int64_t{i}));
      support::Clock::sleep_for(support::SimDuration(0.5));
    }
    farm.input()->close();
  });

  using WallClock = std::chrono::steady_clock;
  const auto t0 = WallClock::now();
  std::multiset<std::uint64_t> ids;
  std::vector<double> arrival_s;
  std::jthread drainer([&farm, &ids, &arrival_s, t0] {
    rt::Task t;
    while (farm.output()->pop(t) == support::ChannelStatus::Ok) {
      ids.insert(t.id);
      arrival_s.push_back(
          std::chrono::duration<double>(WallClock::now() - t0).count());
    }
  });
  feeder.join();
  farm.wait();
  drainer.join();
  farm_bs->stop_managers();
  pool.stop_watch();

  r.arrivals = ids.size();
  r.unique = std::set<std::uint64_t>(ids.begin(), ids.end()).size();
  r.stats = pool.chaos_stats();
  r.hard_fails = pool.endpoint_failures();
  r.fallbacks = pool.fallback_nodes_created();
  r.farm_failures = farm.failures();
  for (std::size_t i = 1; i < arrival_s.size(); ++i)
    r.mttr_ms = std::max(r.mttr_ms, (arrival_s[i] - arrival_s[i - 1]) * 1e3);

  net::stop_bskd(daemon, SIGKILL);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = benchutil::arg_double(argc, argv, "--scale", 100.0);
  const long ntasks = benchutil::arg_long(argc, argv, "--tasks", 240);
  const long workers = benchutil::arg_long(argc, argv, "--workers", 4);
  const auto seed = static_cast<std::uint64_t>(
      benchutil::arg_long(argc, argv, "--seed", 42));
  support::ScopedClockScale clock(scale);

  std::printf("== E9b (extension): chaos sweep — fault class vs"
              " self-healing ==\n");
  std::printf("%ld tasks, %ld remote workers on one bskd, seed %llu;"
              " faults start at wall t~0.4s\n\n",
              ntasks, workers, static_cast<unsigned long long>(seed));
  std::printf("%-10s %9s %6s %8s %6s %8s %8s %6s %9s %9s %5s\n", "# class",
              "delivered", "uniq", "dup_inj", "drop", "corrupt", "stall",
              "hard", "fallback", "mttr[ms]", "ok");

  std::vector<CaseSpec> cases;
  cases.push_back({"baseline", std::nullopt});
  {
    net::ChaosSpec s;
    s.drop = 0.02;
    cases.push_back({"drop", s});
  }
  {
    net::ChaosSpec s;
    s.dup = 0.02;
    cases.push_back({"dup", s});
  }
  {
    net::ChaosSpec s;
    s.corrupt = 0.02;
    cases.push_back({"corrupt", s});
  }
  {
    net::ChaosSpec s;
    s.delay_s = 0.002;
    s.delay_jitter_s = 0.003;
    s.delay_prob = 0.2;
    cases.push_back({"delay", s});
  }
  {
    net::ChaosSpec s;  // 300ms blip < grace: same sessions resume
    s.partitions.push_back({0.4, 0.3});
    cases.push_back({"partition", s});
  }
  {
    net::ChaosSpec s;  // hole outlives the grace: replace-and-drain
    s.partitions.push_back({0.4, 2.5});
    cases.push_back({"netsplit", s, /*grace=*/0.3});
  }
  {
    net::ChaosSpec s;  // scripted connection kill: peer-crash equivalent
    s.kill_at_s = 0.4;
    cases.push_back({"kill", s, /*grace=*/0.2});
  }

  bool all_ok = true;
  for (const CaseSpec& cs : cases) {
    const Result r = run(cs, ntasks, workers, seed);
    if (!r.spawned) {
      std::printf("%-10s  bskd spawn failed — skipping\n", cs.name);
      all_ok = false;
      continue;
    }
    const bool ok = r.arrivals == static_cast<std::size_t>(ntasks) &&
                    r.unique == static_cast<std::size_t>(ntasks);
    all_ok = all_ok && ok;
    std::printf("%-10s %9zu %6zu %8llu %6llu %8llu %8llu %6zu %9zu %9.0f"
                " %5s\n",
                cs.name, r.arrivals, r.unique,
                static_cast<unsigned long long>(r.stats.duplicated),
                static_cast<unsigned long long>(r.stats.dropped),
                static_cast<unsigned long long>(r.stats.corrupted),
                static_cast<unsigned long long>(r.stats.stalled_inbound),
                r.hard_fails, r.fallbacks, r.mttr_ms, ok ? "yes" : "NO");
  }

  std::printf("\n# expected shape: delivered == uniq == tasks in every"
              " class (exactly-once); dup_inj all suppressed; mttr tracks"
              " the fault class — retransmit-timeout-sized for drop,"
              " partition-length-sized for partition (resume, hard=0),"
              " detection+grace+replacement-sized for netsplit/kill"
              " (hard>0, fallback>0).\n");
  return all_ok ? 0 : 1;
}
