// Experiment E1 — the paper's Fig. 3.
//
// A single behavioural-skeleton autonomic manager drives a task farm
// (medical-image-processing stand-in) toward a user SLA of 0.6 processed
// tasks/second, starting from one worker and recruiting more cores until
// the contract is met. The paper's plot shows throughput stepping upward
// with each added resource until it crosses the contract line and then
// holding; the series printed here reproduces that shape.

#include <cstdio>

#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/apps.hpp"

int main(int argc, char** argv) {
  using namespace bsk;
  const double scale = benchutil::arg_double(argc, argv, "--scale", 50.0);
  support::ScopedClockScale clock(scale);

  sim::Platform platform = sim::Platform::testbed_smp8();
  sim::ResourceManager rm(platform);
  support::EventLog log;

  bs::Fig3Params p;
  bs::Fig3App app(p, rm, log);

  benchutil::Sampler sampler(
      support::SimDuration(2.0), [&] {
        return std::vector<double>{
            app.farm().metrics().departure_rate(),
            p.contract_min_rate,
            static_cast<double>(app.farm().worker_count()),
            static_cast<double>(app.cores_in_use()),
        };
      });

  std::printf("== Fig. 3: single AM ensuring a %.1f task/s contract ==\n",
              p.contract_min_rate);
  std::printf("tasks=%zu  input=%.1f/s  work=%.1fs  initial_workers=%zu\n",
              p.tasks, p.input_rate, p.work_s, p.initial_workers);

  app.start();
  sampler.start();
  app.wait();
  sampler.stop();

  benchutil::print_series(
      "throughput vs contract (tasks/s), workers, cores",
      {"throughput", "contract", "workers", "cores"}, sampler.samples());
  benchutil::print_events("farm manager events", log, "AM_farm");

  // Summary row (paper shape: contract eventually satisfied and held).
  const auto& samples = sampler.samples();
  double final_rate = 0.0;
  std::size_t final_workers = 0;
  for (const auto& s : samples) {
    if (s.values[0] >= p.contract_min_rate) {
      final_rate = s.values[0];
      final_workers = static_cast<std::size_t>(s.values[2]);
      break;
    }
  }
  std::printf("\n# first contract-satisfying sample: rate=%.3f with %zu workers"
              " (processed %zu tasks)\n",
              final_rate, final_workers, app.sink().received());
  return 0;
}
