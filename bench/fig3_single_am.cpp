// Experiment E1 — the paper's Fig. 3.
//
// A single behavioural-skeleton autonomic manager drives a task farm
// (medical-image-processing stand-in) toward a user SLA of 0.6 processed
// tasks/second, starting from one worker and recruiting more cores until
// the contract is met. The paper's plot shows throughput stepping upward
// with each added resource until it crosses the contract line and then
// holding; the series printed here reproduces that shape.
//
// Observability hooks (the E1 capture path of scripts/run_experiments.sh):
//   --obs-dir DIR   write DIR/local.metrics.prom (Prometheus exposition) and
//                   DIR/local.trace.jsonl (MAPE decision spans + event log)
//   --remote        host the farm's workers in a spawned bskd; with
//                   --obs-dir, also pull the daemon's trace over the wire
//                   (StatsReq role-2 channel) into DIR/bskd.trace.jsonl so
//                   bsk-trace can merge one cross-process causal trace.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/args.hpp"
#include "bench/common.hpp"
#include "bs/apps.hpp"
#include "net/worker_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef BSK_BSKD_PATH
#define BSK_BSKD_PATH "bskd"
#endif

int main(int argc, char** argv) {
  using namespace bsk;
  const double scale = benchutil::arg_double(argc, argv, "--scale", 50.0);
  const std::string obs_dir =
      benchutil::arg_string(argc, argv, "--obs-dir");
  const bool remote = benchutil::arg_flag(argc, argv, "--remote");
  support::ScopedClockScale clock(scale);
  obs::TraceLog::global().set_process_tag("local");

  sim::Platform platform = sim::Platform::testbed_smp8();
  sim::ResourceManager rm(platform);
  support::EventLog log;

  net::BskdProcess daemon;
  std::unique_ptr<net::WorkerPool> pool;
  bs::Fig3Params p;
  if (remote) {
    daemon = net::spawn_bskd(BSK_BSKD_PATH);
    if (!daemon.valid()) {
      std::fprintf(stderr, "fig3_single_am: cannot spawn bskd\n");
      return 1;
    }
    net::WorkerPoolOptions wopts;
    wopts.node.credit_window = 4;
    pool = std::make_unique<net::WorkerPool>(
        std::vector<net::Endpoint>{{"127.0.0.1", daemon.port}}, wopts);
    p.worker_factory = pool->factory();
  }
  bs::Fig3App app(p, rm, log);

  benchutil::Sampler sampler(
      support::SimDuration(2.0), [&] {
        return std::vector<double>{
            app.farm().metrics().departure_rate(),
            p.contract_min_rate,
            static_cast<double>(app.farm().worker_count()),
            static_cast<double>(app.cores_in_use()),
        };
      });

  std::printf("== Fig. 3: single AM ensuring a %.1f task/s contract ==\n",
              p.contract_min_rate);
  std::printf("tasks=%zu  input=%.1f/s  work=%.1fs  initial_workers=%zu\n",
              p.tasks, p.input_rate, p.work_s, p.initial_workers);

  app.start();
  sampler.start();
  app.wait();
  sampler.stop();

  benchutil::print_series(
      "throughput vs contract (tasks/s), workers, cores",
      {"throughput", "contract", "workers", "cores"}, sampler.samples());
  benchutil::print_events("farm manager events", log, "AM_farm");

  // Summary row (paper shape: contract eventually satisfied and held).
  const auto& samples = sampler.samples();
  double final_rate = 0.0;
  std::size_t final_workers = 0;
  for (const auto& s : samples) {
    if (s.values[0] >= p.contract_min_rate) {
      final_rate = s.values[0];
      final_workers = static_cast<std::size_t>(s.values[2]);
      break;
    }
  }
  std::printf("\n# first contract-satisfying sample: rate=%.3f with %zu workers"
              " (processed %zu tasks)\n",
              final_rate, final_workers, app.sink().received());

  if (!obs_dir.empty()) {
    // Prometheus metrics snapshot of this process.
    {
      std::ofstream out(obs_dir + "/local.metrics.prom", std::ios::trunc);
      obs::MetricsRegistry::global().write_prometheus(out);
    }
    // Decision spans + the experiment's event log, one JSON object per line.
    {
      std::ofstream out(obs_dir + "/local.trace.jsonl", std::ios::trunc);
      obs::TraceLog::global().dump_jsonl(out);
      log.dump_jsonl(out);
    }
    // The daemon's half of the story, pulled over the stats channel while
    // it is still alive.
    if (remote && daemon.valid()) {
      if (auto text = net::pull_bskd_stats(
              {"127.0.0.1", daemon.port},
              net::StatsRequest::What::TraceJsonl)) {
        std::ofstream out(obs_dir + "/bskd.trace.jsonl", std::ios::trunc);
        out << *text;
      } else {
        std::fprintf(stderr, "fig3_single_am: bskd trace pull failed\n");
      }
      if (auto text = net::pull_bskd_stats(
              {"127.0.0.1", daemon.port},
              net::StatsRequest::What::Prometheus)) {
        std::ofstream out(obs_dir + "/bskd.metrics.prom", std::ios::trunc);
        out << *text;
      }
    }
  }
  if (remote) {
    pool.reset();
    net::stop_bskd(daemon, SIGTERM);
  }
  return 0;
}
