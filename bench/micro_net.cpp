// Experiment E13 — net micro-costs (google-benchmark).
//
// The wire and transport mechanisms behind distributed skeletons: frame
// encode/decode throughput for task messages at several payload sizes, and
// the one-task round-trip latency a RemoteConduit pays per process() call,
// compared across the in-process (SPSC ring) and TCP loopback transports.
// The Inproc-vs-Tcp gap is the price of crossing a real process boundary.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "net/remote_conduit.hpp"
#include "net/shm.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "rt/task.hpp"

namespace {

using namespace bsk;

rt::Task payload_task(std::size_t payload_bytes) {
  return rt::Task::data(
      42, 0.001, std::vector<std::uint8_t>(payload_bytes, std::uint8_t{0xab}));
}

void BM_FrameEncodeTask(benchmark::State& state) {
  const rt::Task t = payload_task(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto wire = net::encode_frame(net::make_task(t));
    bytes += wire.size();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameEncodeTask)->Arg(0)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FrameDecodeTask(benchmark::State& state) {
  const auto wire = net::encode_frame(
      net::make_task(payload_task(static_cast<std::size_t>(state.range(0)))));
  net::FrameDecoder dec;
  std::size_t bytes = 0;
  for (auto _ : state) {
    dec.feed(wire.data(), wire.size());
    auto f = dec.next();
    bytes += wire.size();
    benchmark::DoNotOptimize(f);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameDecodeTask)->Arg(0)->Arg(256)->Arg(4096)->Arg(65536);

// One task out, one result back — the steady-state unit of work of a
// RemoteConduit — against an echo peer on its own thread.
void round_trip_loop(benchmark::State& state, net::Transport& near,
                     net::Transport& far) {
  std::jthread echo([&far] {
    net::Frame f;
    while (far.recv(f) == net::RecvStatus::Ok) {
      f.type = net::FrameType::ResultMsg;
      if (!far.send(f)) break;
    }
  });
  const net::Frame req = net::make_task(payload_task(256));
  net::Frame rep;  // hoisted: reuse the payload buffer across iterations
  for (auto _ : state) {
    near.send(req);
    if (near.recv(rep) != net::RecvStatus::Ok) {
      state.SkipWithError("transport closed mid-benchmark");
      break;
    }
    benchmark::DoNotOptimize(rep.payload.data());
  }
  near.close();
  far.close();
}

void BM_InprocRoundTrip(benchmark::State& state) {
  auto pair = net::InprocTransport::make_pair();
  round_trip_loop(state, *pair.a, *pair.b);
}
BENCHMARK(BM_InprocRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_TcpLoopbackRoundTrip(benchmark::State& state) {
  net::TcpListener listener(0);
  if (!listener.valid()) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  auto client = net::TcpTransport::connect("127.0.0.1", listener.port());
  auto server = listener.accept_for(2.0);
  if (!client || !server) {
    state.SkipWithError("loopback connect/accept failed");
    return;
  }
  round_trip_loop(state, *client, *server);
}
BENCHMARK(BM_TcpLoopbackRoundTrip)->Unit(benchmark::kMicrosecond);

// The colocated fast path: the same round-trip over the shared-memory ring
// pair. The gap to BM_TcpLoopbackRoundTrip is what the shm negotiation buys
// a WorkerPool whose endpoint resolves to the local machine.
void BM_ShmRoundTrip(benchmark::State& state) {
  auto pair = net::ShmTransport::make_pair();
  if (!pair.a || !pair.b) {
    state.SkipWithError("shm pair setup failed");
    return;
  }
  round_trip_loop(state, *pair.a, *pair.b);
}
BENCHMARK(BM_ShmRoundTrip)->Unit(benchmark::kMicrosecond);

// Remote-worker throughput as a function of the credit window. window=1 is
// the strict round-trip-per-task protocol the dataplane used to pay; larger
// windows keep N tasks in flight so the wire latency is amortized across
// the pipeline. The peer is a serial echo, mirroring bskd's FIFO executor.
void credit_window_loop(benchmark::State& state,
                        std::shared_ptr<net::Transport> near,
                        std::shared_ptr<net::Transport> far) {
  std::jthread echo([far] {
    net::Frame f;
    while (far->recv(f) == net::RecvStatus::Ok) {
      if (f.type != net::FrameType::TaskMsg) continue;
      f.type = net::FrameType::ResultMsg;
      if (!far->send(f)) break;
    }
  });
  net::RemoteNodeOptions opts;
  opts.credit_window = static_cast<std::size_t>(state.range(0));
  opts.liveness_timeout_wall_s = 0.0;  // the echo peer sends no heartbeats
  net::RemoteWorkerNode node(near, opts);
  for (auto _ : state) {
    if (!node.process(payload_task(256)) && node.failed()) {
      state.SkipWithError("remote node failed mid-benchmark");
      break;
    }
    // nullopt without failure = window still priming; the result of this
    // task comes back on a later iteration or in the final flush.
  }
  while (node.flush()) {
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  node.on_stop();
  far->close();
}

void BM_InprocCreditThroughput(benchmark::State& state) {
  auto pair = net::InprocTransport::make_pair();
  credit_window_loop(state, pair.a, pair.b);
}
BENCHMARK(BM_InprocCreditThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_TcpCreditThroughput(benchmark::State& state) {
  net::TcpListener listener(0);
  if (!listener.valid()) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }
  std::shared_ptr<net::Transport> client =
      net::TcpTransport::connect("127.0.0.1", listener.port());
  std::shared_ptr<net::Transport> server = listener.accept_for(2.0);
  if (!client || !server) {
    state.SkipWithError("loopback connect/accept failed");
    return;
  }
  credit_window_loop(state, std::move(client), std::move(server));
}
BENCHMARK(BM_TcpCreditThroughput)->Arg(1)->Arg(4)->Arg(16);

void BM_ShmCreditThroughput(benchmark::State& state) {
  auto pair = net::ShmTransport::make_pair();
  if (!pair.a || !pair.b) {
    state.SkipWithError("shm pair setup failed");
    return;
  }
  credit_window_loop(state, pair.a, pair.b);
}
BENCHMARK(BM_ShmCreditThroughput)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
